package mfc

import (
	"branchprof/internal/isa"
	"branchprof/internal/mfc/ast"
	"branchprof/internal/mfc/token"
)

// builtins maps builtin names to a marker; they are handled in
// genCall and may not be redefined.
var builtins = map[string]bool{
	"getc": true, "putc": true,
	"sqrt": true, "sin": true, "cos": true, "exp": true, "log": true,
	"fabs": true, "floor": true, "pow": true,
	"icall0": true, "icall1": true, "icall2": true, "icall3": true,
	"peek": true, "poke": true, "fpeek": true, "fpoke": true,
}

func isBuiltin(name string) bool { return builtins[name] }

// regAlloc is a first-fit register allocator for one register file.
type regAlloc struct {
	used []bool
	max  int
}

func (r *regAlloc) alloc() int {
	for i, u := range r.used {
		if !u {
			r.used[i] = true
			return i
		}
	}
	r.used = append(r.used, true)
	if len(r.used) > r.max {
		r.max = len(r.used)
	}
	return len(r.used) - 1
}

// allocRun reserves n consecutive registers (for call argument
// staging) and returns the base index. n may be zero.
func (r *regAlloc) allocRun(n int) int {
	if n == 0 {
		return 0
	}
outer:
	for i := 0; ; i++ {
		for j := 0; j < n; j++ {
			if i+j < len(r.used) && r.used[i+j] {
				continue outer
			}
		}
		for len(r.used) < i+n {
			r.used = append(r.used, false)
		}
		for j := 0; j < n; j++ {
			r.used[i+j] = true
		}
		if len(r.used) > r.max {
			r.max = len(r.used)
		}
		return i
	}
}

func (r *regAlloc) free(i int) { r.used[i] = false }

// localVar is a scoped local scalar bound to a register.
type localVar struct {
	typ ast.Type
	reg int
}

// label is a branch target with backpatching.
type label struct {
	pc      int
	patches []int
}

// value is the result of expression codegen: a register in the file
// selected by typ. owned values are temporaries the consumer frees.
type value struct {
	reg   int
	typ   ast.Type
	owned bool
}

// inlineCtx redirects return statements while a callee's body is
// being expanded in place.
type inlineCtx struct {
	retType ast.Type
	resReg  int // caller register receiving the value; unused for void
	end     *label
}

type funcCompiler struct {
	m  *module
	fd *ast.FuncDecl

	code []isa.Instr
	ir   regAlloc
	fr   regAlloc

	scopes    []map[string]localVar
	breaks    []*label
	conts     []*label
	loopDepth int
	zero      int // register that is always 0 (frames are zeroed on entry)

	inlines     []inlineCtx
	inlineDepth int
}

func newFuncCompiler(m *module, fd *ast.FuncDecl) *funcCompiler {
	return &funcCompiler{m: m, fd: fd}
}

func (fc *funcCompiler) compile() (isa.Func, error) {
	f := isa.Func{Name: fc.fd.Name, NumParams: len(fc.fd.Params)}
	switch fc.fd.Ret {
	case ast.Int:
		f.Kind = isa.FuncInt
	case ast.Float:
		f.Kind = isa.FuncFloat
	default:
		f.Kind = isa.FuncVoid
	}
	fc.pushScope()
	for _, p := range fc.fd.Params {
		f.FParams = append(f.FParams, p.Type == ast.Float)
		var reg int
		if p.Type == ast.Float {
			reg = fc.fr.alloc()
		} else {
			reg = fc.ir.alloc()
		}
		if _, exists := fc.scopes[0][p.Name]; exists {
			return f, errf(fc.fd.P, "duplicate parameter %s", p.Name)
		}
		fc.scopes[0][p.Name] = localVar{typ: p.Type, reg: reg}
	}
	fc.zero = fc.ir.alloc() // never written; the VM zeroes fresh frames
	if err := fc.genBlock(fc.fd.Body); err != nil {
		return f, err
	}
	// Fall-off-the-end return.
	switch f.Kind {
	case isa.FuncInt:
		fc.emit(isa.Instr{Op: isa.OpRet, A: int32(fc.zero), Site: -1})
	case isa.FuncFloat:
		t := fc.fr.alloc()
		fc.emit(isa.Instr{Op: isa.OpLdf, C: int32(t), Site: -1})
		fc.emit(isa.Instr{Op: isa.OpRet, A: int32(t), Site: -1})
	default:
		fc.emit(isa.Instr{Op: isa.OpRet, Site: -1})
	}
	f.Code = fc.code
	f.NumIRegs = fc.ir.max
	f.NumFRegs = fc.fr.max
	return f, nil
}

// ---- low-level emission ----

func (fc *funcCompiler) emit(in isa.Instr) int {
	if in.Op != isa.OpBr {
		in.Site = -1
	}
	fc.code = append(fc.code, in)
	return len(fc.code) - 1
}

func (fc *funcCompiler) newLabel() *label { return &label{pc: -1} }

func (fc *funcCompiler) bind(l *label) {
	l.pc = len(fc.code)
	for _, idx := range l.patches {
		fc.code[idx].Target = int32(l.pc)
	}
	l.patches = nil
}

func (fc *funcCompiler) target(l *label, at int) {
	if l.pc >= 0 {
		fc.code[at].Target = int32(l.pc)
	} else {
		l.patches = append(l.patches, at)
	}
}

func (fc *funcCompiler) emitJmp(l *label) {
	at := fc.emit(isa.Instr{Op: isa.OpJmp, Site: -1})
	fc.target(l, at)
}

// emitBr emits a conditional branch to l taken when reg is nonzero,
// registering a new static branch site.
func (fc *funcCompiler) emitBr(reg int, l *label, siteLabel string, loopBack bool, pos token.Pos) {
	site := fc.m.newSite(isa.BranchSite{
		Func:      fc.fd.Name,
		Line:      pos.Line,
		Col:       pos.Col,
		LoopDepth: fc.loopDepth,
		LoopBack:  loopBack,
		Label:     siteLabel,
	})
	at := fc.emit(isa.Instr{Op: isa.OpBr, A: int32(reg), Site: site})
	fc.target(l, at)
}

// ---- values and scopes ----

func (fc *funcCompiler) allocT(typ ast.Type) value {
	if typ == ast.Float {
		return value{reg: fc.fr.alloc(), typ: ast.Float, owned: true}
	}
	return value{reg: fc.ir.alloc(), typ: ast.Int, owned: true}
}

func (fc *funcCompiler) release(v value) {
	if !v.owned {
		return
	}
	if v.typ == ast.Float {
		fc.fr.free(v.reg)
	} else {
		fc.ir.free(v.reg)
	}
}

func (fc *funcCompiler) pushScope() {
	fc.scopes = append(fc.scopes, make(map[string]localVar))
}

func (fc *funcCompiler) popScope() {
	fc.scopes = fc.scopes[:len(fc.scopes)-1]
}

func (fc *funcCompiler) lookupLocal(name string) (localVar, bool) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if lv, ok := fc.scopes[i][name]; ok {
			return lv, true
		}
	}
	return localVar{}, false
}

// ---- statements ----

func (fc *funcCompiler) genBlock(b *ast.BlockStmt) error {
	fc.pushScope()
	defer fc.popScope()
	for _, s := range b.List {
		if err := fc.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) genStmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return fc.genBlock(s)
	case *ast.VarStmt:
		return fc.genVar(s)
	case *ast.AssignStmt:
		return fc.genAssign(s)
	case *ast.IfStmt:
		return fc.genIf(s)
	case *ast.WhileStmt:
		return fc.genWhile(s)
	case *ast.ForStmt:
		return fc.genFor(s)
	case *ast.SwitchStmt:
		return fc.genSwitch(s)
	case *ast.BreakStmt:
		if len(fc.breaks) == 0 {
			return errf(s.P, "break outside loop or switch")
		}
		fc.emitJmp(fc.breaks[len(fc.breaks)-1])
		return nil
	case *ast.ContinueStmt:
		if len(fc.conts) == 0 {
			return errf(s.P, "continue outside loop")
		}
		fc.emitJmp(fc.conts[len(fc.conts)-1])
		return nil
	case *ast.ReturnStmt:
		return fc.genReturn(s)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.Call)
		if !ok {
			return errf(s.P, "expression statement must be a call")
		}
		v, typ, err := fc.genCall(call)
		if err != nil {
			return err
		}
		if typ != ast.Void {
			fc.release(v)
		}
		return nil
	}
	return errf(s.Pos(), "unsupported statement")
}

func (fc *funcCompiler) genVar(s *ast.VarStmt) error {
	cur := fc.scopes[len(fc.scopes)-1]
	if _, ok := cur[s.Name]; ok {
		return errf(s.P, "%s redeclared in this block", s.Name)
	}
	var reg int
	if s.Type == ast.Float {
		reg = fc.fr.alloc()
	} else {
		reg = fc.ir.alloc()
	}
	cur[s.Name] = localVar{typ: s.Type, reg: reg}
	if s.Init == nil {
		// Frames are zeroed by the VM, but an explicit initialization
		// keeps reuse of a freed register from leaking stale values.
		if s.Type == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpLdf, C: int32(reg)})
		} else {
			fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(reg)})
		}
		return nil
	}
	v, err := fc.genExpect(s.Init, s.Type)
	if err != nil {
		return err
	}
	fc.moveInto(reg, v)
	return nil
}

// moveInto copies v into register reg of v's file and releases v.
func (fc *funcCompiler) moveInto(reg int, v value) {
	if v.reg != reg {
		if v.typ == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpFMov, C: int32(reg), A: int32(v.reg)})
		} else {
			fc.emit(isa.Instr{Op: isa.OpMov, C: int32(reg), A: int32(v.reg)})
		}
	}
	fc.release(v)
}

func (fc *funcCompiler) genAssign(s *ast.AssignStmt) error {
	if s.Idx == nil {
		if lv, ok := fc.lookupLocal(s.Name); ok {
			v, err := fc.genExpect(s.Value, lv.typ)
			if err != nil {
				return err
			}
			fc.moveInto(lv.reg, v)
			return nil
		}
		g, ok := fc.m.globals[s.Name]
		if !ok {
			return errf(s.P, "undefined variable %s", s.Name)
		}
		if g.array {
			return errf(s.P, "%s is an array; assign to an element", s.Name)
		}
		v, err := fc.genExpect(s.Value, g.typ)
		if err != nil {
			return err
		}
		if g.typ == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpFSt, A: int32(fc.zero), B: int32(v.reg), Imm: g.base})
		} else {
			fc.emit(isa.Instr{Op: isa.OpSt, A: int32(fc.zero), B: int32(v.reg), Imm: g.base})
		}
		fc.release(v)
		return nil
	}
	g, ok := fc.m.globals[s.Name]
	if !ok {
		return errf(s.P, "undefined array %s", s.Name)
	}
	if !g.array {
		return errf(s.P, "%s is not an array", s.Name)
	}
	idx, err := fc.genExpect(s.Idx, ast.Int)
	if err != nil {
		return err
	}
	v, err := fc.genExpect(s.Value, g.typ)
	if err != nil {
		return err
	}
	if g.typ == ast.Float {
		fc.emit(isa.Instr{Op: isa.OpFSt, A: int32(idx.reg), B: int32(v.reg), Imm: g.base})
	} else {
		fc.emit(isa.Instr{Op: isa.OpSt, A: int32(idx.reg), B: int32(v.reg), Imm: g.base})
	}
	fc.release(v)
	fc.release(idx)
	return nil
}

func (fc *funcCompiler) genIf(s *ast.IfStmt) error {
	cv, err := fc.m.fold(s.Cond)
	if err != nil {
		return err
	}
	if cv != nil && cv.typ != ast.Int {
		return errf(s.Cond.Pos(), "if condition must be int")
	}
	if cv != nil && fc.m.opts.DeadBranchElim {
		if cv.i != 0 {
			return fc.genBlock(s.Then)
		}
		if s.Else != nil {
			return fc.genStmt(s.Else)
		}
		return nil
	}
	if cv == nil && fc.m.opts.UseSelects {
		if cand, ok := fc.matchSelect(s); ok {
			return fc.genSelect(s, cand)
		}
	}
	var cond value
	if cv != nil {
		cond = fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(cond.reg), Imm: cv.i})
	} else {
		cond, err = fc.genExpect(s.Cond, ast.Int)
		if err != nil {
			return err
		}
	}
	thenL := fc.newLabel()
	endL := fc.newLabel()
	fc.emitBr(cond.reg, thenL, "if", false, s.P)
	fc.release(cond)
	if s.Else != nil {
		if err := fc.genStmt(s.Else); err != nil {
			return err
		}
	}
	fc.emitJmp(endL)
	fc.bind(thenL)
	if err := fc.genBlock(s.Then); err != nil {
		return err
	}
	fc.bind(endL)
	return nil
}

// genLoop emits the shared bottom-tested loop shape:
//
//	     jmp test
//	body: <body>
//	cont: <post>
//	test: <cond>; br cond @body   <- back edge, taken while looping
//	end:
//
// cond==nil (or a constant-true condition under dead-branch
// elimination) degenerates to an unconditional back edge with no
// branch site, matching how compilers treat unconditional loops.
func (fc *funcCompiler) genLoop(cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, siteLabel string, pos token.Pos) error {
	cv := (*constVal)(nil)
	var err error
	if cond != nil {
		cv, err = fc.m.fold(cond)
		if err != nil {
			return err
		}
		if cv != nil && cv.typ != ast.Int {
			return errf(cond.Pos(), "loop condition must be int")
		}
	}
	if cv != nil && cv.i == 0 && fc.m.opts.DeadBranchElim {
		return nil // loop never entered, body eliminated
	}
	bodyL := fc.newLabel()
	contL := fc.newLabel()
	testL := fc.newLabel()
	endL := fc.newLabel()
	fc.emitJmp(testL)
	fc.bind(bodyL)
	fc.breaks = append(fc.breaks, endL)
	fc.conts = append(fc.conts, contL)
	fc.loopDepth++
	err = fc.genBlock(body)
	fc.loopDepth--
	fc.breaks = fc.breaks[:len(fc.breaks)-1]
	fc.conts = fc.conts[:len(fc.conts)-1]
	if err != nil {
		return err
	}
	fc.bind(contL)
	if post != nil {
		if err := fc.genStmt(post); err != nil {
			return err
		}
	}
	fc.bind(testL)
	switch {
	case cond == nil, cv != nil && cv.i != 0 && fc.m.opts.DeadBranchElim:
		fc.emitJmp(bodyL)
	case cv != nil:
		fc.loopDepth++
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(v.reg), Imm: cv.i})
		fc.emitBr(v.reg, bodyL, siteLabel, true, pos)
		fc.release(v)
		fc.loopDepth--
	default:
		fc.loopDepth++
		v, err := fc.genExpect(cond, ast.Int)
		if err != nil {
			return err
		}
		fc.emitBr(v.reg, bodyL, siteLabel, true, pos)
		fc.release(v)
		fc.loopDepth--
	}
	fc.bind(endL)
	return nil
}

func (fc *funcCompiler) genWhile(s *ast.WhileStmt) error {
	return fc.genLoop(s.Cond, nil, s.Body, "while", s.P)
}

func (fc *funcCompiler) genFor(s *ast.ForStmt) error {
	fc.pushScope() // for-init variables scope over the loop
	defer fc.popScope()
	if s.Init != nil {
		if err := fc.genStmt(s.Init); err != nil {
			return err
		}
	}
	return fc.genLoop(s.Cond, s.Post, s.Body, "for", s.P)
}

func (fc *funcCompiler) genSwitch(s *ast.SwitchStmt) error {
	// Fold every case value up front, keeping each value's own source
	// position so every lowered compare-and-branch gets a distinct
	// site identity (directives re-attach by label/line/col).
	type arm struct {
		vals []int64
		poss []token.Pos
		body []ast.Stmt
		lbl  *label
		def  bool
	}
	arms := make([]arm, 0, len(s.Cases))
	seen := make(map[int64]bool)
	for _, c := range s.Cases {
		a := arm{body: c.Body, def: c.Values == nil}
		for _, ve := range c.Values {
			cv, err := fc.m.fold(ve)
			if err != nil {
				return err
			}
			if cv == nil || cv.typ != ast.Int {
				return errf(ve.Pos(), "case value must be an int constant")
			}
			if seen[cv.i] {
				return errf(ve.Pos(), "duplicate case value %d", cv.i)
			}
			seen[cv.i] = true
			a.vals = append(a.vals, cv.i)
			a.poss = append(a.poss, ve.Pos())
		}
		arms = append(arms, a)
	}

	subjCV, err := fc.m.fold(s.Subject)
	if err != nil {
		return err
	}
	if subjCV != nil && subjCV.typ != ast.Int {
		return errf(s.Subject.Pos(), "switch subject must be int")
	}
	endL := fc.newLabel()
	if subjCV != nil && fc.m.opts.DeadBranchElim {
		// Constant subject: only the matching arm survives.
		var chosen []ast.Stmt
		for _, a := range arms {
			if a.def && chosen == nil {
				chosen = a.body
			}
			for _, v := range a.vals {
				if v == subjCV.i {
					chosen = a.body
				}
			}
		}
		fc.breaks = append(fc.breaks, endL)
		for _, st := range chosen {
			if err := fc.genStmt(st); err != nil {
				return err
			}
		}
		fc.breaks = fc.breaks[:len(fc.breaks)-1]
		fc.bind(endL)
		return nil
	}

	var subj value
	if subjCV != nil {
		subj = fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(subj.reg), Imm: subjCV.i})
	} else {
		subj, err = fc.genExpect(s.Subject, ast.Int)
		if err != nil {
			return err
		}
	}
	// Cascade of compare-and-branch, one site per case value — the
	// linear lowering of multi-way branches the paper describes.
	var defL *label
	for i := range arms {
		arms[i].lbl = fc.newLabel()
		if arms[i].def {
			defL = arms[i].lbl
		}
		for vi, v := range arms[i].vals {
			t := fc.allocT(ast.Int)
			fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(t.reg), Imm: v})
			c := fc.allocT(ast.Int)
			fc.emit(isa.Instr{Op: isa.OpSeq, C: int32(c.reg), A: int32(subj.reg), B: int32(t.reg)})
			fc.emitBr(c.reg, arms[i].lbl, "switch-arm", false, arms[i].poss[vi])
			fc.release(c)
			fc.release(t)
		}
	}
	fc.release(subj)
	if defL != nil {
		fc.emitJmp(defL)
	} else {
		fc.emitJmp(endL)
	}
	fc.breaks = append(fc.breaks, endL)
	for _, a := range arms {
		fc.bind(a.lbl)
		for _, st := range a.body {
			if err := fc.genStmt(st); err != nil {
				return err
			}
		}
		fc.emitJmp(endL)
	}
	fc.breaks = fc.breaks[:len(fc.breaks)-1]
	fc.bind(endL)
	return nil
}

func (fc *funcCompiler) genReturn(s *ast.ReturnStmt) error {
	// Inside an inlined body, return becomes "store the result and
	// jump past the expansion".
	if n := len(fc.inlines); n > 0 {
		ctx := fc.inlines[n-1]
		if ctx.retType == ast.Void {
			if s.Value != nil {
				return errf(s.P, "void function returns a value")
			}
			fc.emitJmp(ctx.end)
			return nil
		}
		if s.Value == nil {
			return errf(s.P, "function must return %s", ctx.retType)
		}
		v, err := fc.genExpect(s.Value, ctx.retType)
		if err != nil {
			return err
		}
		fc.moveInto(ctx.resReg, v)
		fc.emitJmp(ctx.end)
		return nil
	}
	switch fc.fd.Ret {
	case ast.Void:
		if s.Value != nil {
			return errf(s.P, "void function %s returns a value", fc.fd.Name)
		}
		fc.emit(isa.Instr{Op: isa.OpRet})
		return nil
	default:
		if s.Value == nil {
			return errf(s.P, "%s must return %s", fc.fd.Name, fc.fd.Ret)
		}
		v, err := fc.genExpect(s.Value, fc.fd.Ret)
		if err != nil {
			return err
		}
		fc.emit(isa.Instr{Op: isa.OpRet, A: int32(v.reg)})
		fc.release(v)
		return nil
	}
}

// ---- expressions ----

// genExpect generates e and checks its type.
func (fc *funcCompiler) genExpect(e ast.Expr, want ast.Type) (value, error) {
	v, err := fc.gen(e)
	if err != nil {
		return value{}, err
	}
	if v.typ != want {
		fc.release(v)
		return value{}, errf(e.Pos(), "expected %s expression, got %s", want, v.typ)
	}
	return v, nil
}

func (fc *funcCompiler) gen(e ast.Expr) (value, error) {
	// Constant folding first: any constant subexpression becomes a
	// single load-immediate.
	cv, err := fc.m.fold(e)
	if err != nil {
		return value{}, err
	}
	if cv != nil {
		v := fc.allocT(cv.typ)
		if cv.typ == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpLdf, C: int32(v.reg), FImm: cv.f})
		} else {
			fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(v.reg), Imm: cv.i})
		}
		return v, nil
	}
	switch e := e.(type) {
	case *ast.StrLit:
		addr := fc.m.internString(e.Value)
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(v.reg), Imm: addr})
		return v, nil
	case *ast.Ident:
		return fc.genIdent(e)
	case *ast.Index:
		return fc.genIndex(e)
	case *ast.Call:
		v, typ, err := fc.genCall(e)
		if err != nil {
			return value{}, err
		}
		if typ == ast.Void {
			return value{}, errf(e.P, "%s returns no value", e.Name)
		}
		return v, nil
	case *ast.FuncRef:
		// &name yields a function's index (for icallN) or a global's
		// base address in its memory (for peek/poke).
		if fs, ok := fc.m.funcs[e.Name]; ok {
			v := fc.allocT(ast.Int)
			fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(v.reg), Imm: int64(fs.index)})
			return v, nil
		}
		if g, ok := fc.m.globals[e.Name]; ok {
			v := fc.allocT(ast.Int)
			fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(v.reg), Imm: g.base})
			return v, nil
		}
		return value{}, errf(e.P, "&%s: undefined function or global", e.Name)
	case *ast.Unary:
		return fc.genUnary(e)
	case *ast.Binary:
		return fc.genBinary(e)
	case *ast.Cast:
		return fc.genCast(e)
	}
	return value{}, errf(e.Pos(), "unsupported expression")
}

func (fc *funcCompiler) genIdent(e *ast.Ident) (value, error) {
	if lv, ok := fc.lookupLocal(e.Name); ok {
		return value{reg: lv.reg, typ: lv.typ, owned: false}, nil
	}
	if g, ok := fc.m.globals[e.Name]; ok {
		if g.array {
			return value{}, errf(e.P, "%s is an array; index it", e.Name)
		}
		v := fc.allocT(g.typ)
		if g.typ == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpFLd, C: int32(v.reg), A: int32(fc.zero), Imm: g.base})
		} else {
			fc.emit(isa.Instr{Op: isa.OpLd, C: int32(v.reg), A: int32(fc.zero), Imm: g.base})
		}
		return v, nil
	}
	return value{}, errf(e.P, "undefined variable %s", e.Name)
}

func (fc *funcCompiler) genIndex(e *ast.Index) (value, error) {
	g, ok := fc.m.globals[e.Array]
	if !ok {
		return value{}, errf(e.P, "undefined array %s", e.Array)
	}
	if !g.array {
		return value{}, errf(e.P, "%s is not an array", e.Array)
	}
	idx, err := fc.genExpect(e.Idx, ast.Int)
	if err != nil {
		return value{}, err
	}
	v := fc.allocT(g.typ)
	if g.typ == ast.Float {
		fc.emit(isa.Instr{Op: isa.OpFLd, C: int32(v.reg), A: int32(idx.reg), Imm: g.base})
	} else {
		fc.emit(isa.Instr{Op: isa.OpLd, C: int32(v.reg), A: int32(idx.reg), Imm: g.base})
	}
	fc.release(idx)
	return v, nil
}

func (fc *funcCompiler) genUnary(e *ast.Unary) (value, error) {
	x, err := fc.gen(e.X)
	if err != nil {
		return value{}, err
	}
	switch e.Op {
	case token.Minus:
		v := fc.allocT(x.typ)
		if x.typ == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpFNeg, C: int32(v.reg), A: int32(x.reg)})
		} else {
			fc.emit(isa.Instr{Op: isa.OpNeg, C: int32(v.reg), A: int32(x.reg)})
		}
		fc.release(x)
		return v, nil
	case token.Bang:
		if x.typ != ast.Int {
			fc.release(x)
			return value{}, errf(e.P, "! requires an int operand")
		}
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpSeq, C: int32(v.reg), A: int32(x.reg), B: int32(fc.zero)})
		fc.release(x)
		return v, nil
	case token.Tilde:
		if x.typ != ast.Int {
			fc.release(x)
			return value{}, errf(e.P, "~ requires an int operand")
		}
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpNot, C: int32(v.reg), A: int32(x.reg)})
		fc.release(x)
		return v, nil
	}
	fc.release(x)
	return value{}, errf(e.P, "unsupported unary operator %s", e.Op)
}

func (fc *funcCompiler) genCast(e *ast.Cast) (value, error) {
	x, err := fc.gen(e.X)
	if err != nil {
		return value{}, err
	}
	if x.typ == e.To {
		return x, nil
	}
	v := fc.allocT(e.To)
	if e.To == ast.Float {
		fc.emit(isa.Instr{Op: isa.OpCvtIF, C: int32(v.reg), A: int32(x.reg)})
	} else {
		fc.emit(isa.Instr{Op: isa.OpCvtFI, C: int32(v.reg), A: int32(x.reg)})
	}
	fc.release(x)
	return v, nil
}

// intCmpOps maps comparison tokens to (op, swap-operands).
var intCmpOps = map[token.Kind]struct {
	op   isa.Op
	swap bool
}{
	token.Lt: {isa.OpSlt, false}, token.Le: {isa.OpSle, false},
	token.Gt: {isa.OpSlt, true}, token.Ge: {isa.OpSle, true},
	token.Eq: {isa.OpSeq, false}, token.Ne: {isa.OpSne, false},
}

var fltCmpOps = map[token.Kind]struct {
	op   isa.Op
	swap bool
}{
	token.Lt: {isa.OpFSlt, false}, token.Le: {isa.OpFSle, false},
	token.Gt: {isa.OpFSlt, true}, token.Ge: {isa.OpFSle, true},
	token.Eq: {isa.OpFSeq, false}, token.Ne: {isa.OpFSne, false},
}

var intArithOps = map[token.Kind]isa.Op{
	token.Plus: isa.OpAdd, token.Minus: isa.OpSub, token.Star: isa.OpMul,
	token.Slash: isa.OpDiv, token.Percent: isa.OpRem,
	token.Amp: isa.OpAnd, token.Pipe: isa.OpOr, token.Caret: isa.OpXor,
	token.Shl: isa.OpShl, token.Shr: isa.OpShr,
}

var fltArithOps = map[token.Kind]isa.Op{
	token.Plus: isa.OpFAdd, token.Minus: isa.OpFSub,
	token.Star: isa.OpFMul, token.Slash: isa.OpFDiv,
}

func (fc *funcCompiler) genBinary(e *ast.Binary) (value, error) {
	if e.Op == token.AndAnd || e.Op == token.OrOr {
		return fc.genShortCircuit(e)
	}
	x, err := fc.gen(e.X)
	if err != nil {
		return value{}, err
	}
	y, err := fc.gen(e.Y)
	if err != nil {
		fc.release(x)
		return value{}, err
	}
	if x.typ != y.typ {
		fc.release(y)
		fc.release(x)
		return value{}, errf(e.P, "mismatched operand types %s and %s", x.typ, y.typ)
	}
	a, b := x, y
	if x.typ == ast.Int {
		if cmp, ok := intCmpOps[e.Op]; ok {
			if cmp.swap {
				a, b = y, x
			}
			v := fc.allocT(ast.Int)
			fc.emit(isa.Instr{Op: cmp.op, C: int32(v.reg), A: int32(a.reg), B: int32(b.reg)})
			fc.release(y)
			fc.release(x)
			return v, nil
		}
		op, ok := intArithOps[e.Op]
		if !ok {
			fc.release(y)
			fc.release(x)
			return value{}, errf(e.P, "operator %s not defined on int", e.Op)
		}
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: op, C: int32(v.reg), A: int32(x.reg), B: int32(y.reg)})
		fc.release(y)
		fc.release(x)
		return v, nil
	}
	if cmp, ok := fltCmpOps[e.Op]; ok {
		if cmp.swap {
			a, b = y, x
		}
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: cmp.op, C: int32(v.reg), A: int32(a.reg), B: int32(b.reg)})
		fc.release(y)
		fc.release(x)
		return v, nil
	}
	op, ok := fltArithOps[e.Op]
	if !ok {
		fc.release(y)
		fc.release(x)
		return value{}, errf(e.P, "operator %s not defined on float", e.Op)
	}
	v := fc.allocT(ast.Float)
	fc.emit(isa.Instr{Op: op, C: int32(v.reg), A: int32(x.reg), B: int32(y.reg)})
	fc.release(y)
	fc.release(x)
	return v, nil
}

// genShortCircuit lowers && and || with one conditional branch each,
// producing a 0/1 value. These branches are real static sites: complex
// conditions contribute several branches, as they did in the paper's
// compiled code.
func (fc *funcCompiler) genShortCircuit(e *ast.Binary) (value, error) {
	x, err := fc.genExpect(e.X, ast.Int)
	if err != nil {
		return value{}, err
	}
	res := fc.allocT(ast.Int)
	rhsOrSkip := fc.newLabel()
	end := fc.newLabel()
	if e.Op == token.AndAnd {
		// taken = left true = evaluate right side.
		fc.emitBr(x.reg, rhsOrSkip, "&&", false, e.P)
		fc.release(x)
		fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(res.reg), Imm: 0})
		fc.emitJmp(end)
		fc.bind(rhsOrSkip)
		y, err := fc.genExpect(e.Y, ast.Int)
		if err != nil {
			return value{}, err
		}
		fc.emit(isa.Instr{Op: isa.OpSne, C: int32(res.reg), A: int32(y.reg), B: int32(fc.zero)})
		fc.release(y)
		fc.bind(end)
		return res, nil
	}
	// ||: taken = left true = result is 1 without evaluating right.
	fc.emitBr(x.reg, rhsOrSkip, "||", false, e.P)
	fc.release(x)
	y, err := fc.genExpect(e.Y, ast.Int)
	if err != nil {
		return value{}, err
	}
	fc.emit(isa.Instr{Op: isa.OpSne, C: int32(res.reg), A: int32(y.reg), B: int32(fc.zero)})
	fc.release(y)
	fc.emitJmp(end)
	fc.bind(rhsOrSkip)
	fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(res.reg), Imm: 1})
	fc.bind(end)
	return res, nil
}

// genCall handles builtins, indirect calls and user function calls.
// It returns the result value and its type; typ==ast.Void means no
// value (and an empty value).
func (fc *funcCompiler) genCall(e *ast.Call) (value, ast.Type, error) {
	switch e.Name {
	case "getc":
		if len(e.Args) != 0 {
			return value{}, 0, errf(e.P, "getc takes no arguments")
		}
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpGetc, C: int32(v.reg)})
		return v, ast.Int, nil
	case "putc":
		if len(e.Args) != 1 {
			return value{}, 0, errf(e.P, "putc takes one int argument")
		}
		x, err := fc.genExpect(e.Args[0], ast.Int)
		if err != nil {
			return value{}, 0, err
		}
		fc.emit(isa.Instr{Op: isa.OpPutc, A: int32(x.reg)})
		fc.release(x)
		return value{}, ast.Void, nil
	case "sqrt", "sin", "cos", "exp", "log", "fabs", "floor":
		if len(e.Args) != 1 {
			return value{}, 0, errf(e.P, "%s takes one float argument", e.Name)
		}
		x, err := fc.genExpect(e.Args[0], ast.Float)
		if err != nil {
			return value{}, 0, err
		}
		op := map[string]isa.Op{
			"sqrt": isa.OpSqrt, "sin": isa.OpSin, "cos": isa.OpCos,
			"exp": isa.OpExp, "log": isa.OpLog, "fabs": isa.OpFAbs,
			"floor": isa.OpFloor,
		}[e.Name]
		v := fc.allocT(ast.Float)
		fc.emit(isa.Instr{Op: op, C: int32(v.reg), A: int32(x.reg)})
		fc.release(x)
		return v, ast.Float, nil
	case "pow":
		if len(e.Args) != 2 {
			return value{}, 0, errf(e.P, "pow takes two float arguments")
		}
		x, err := fc.genExpect(e.Args[0], ast.Float)
		if err != nil {
			return value{}, 0, err
		}
		y, err := fc.genExpect(e.Args[1], ast.Float)
		if err != nil {
			fc.release(x)
			return value{}, 0, err
		}
		v := fc.allocT(ast.Float)
		fc.emit(isa.Instr{Op: isa.OpPow, C: int32(v.reg), A: int32(x.reg), B: int32(y.reg)})
		fc.release(y)
		fc.release(x)
		return v, ast.Float, nil
	case "peek", "fpeek":
		// Raw word loads: peek(addr) reads int memory, fpeek(addr)
		// float memory. String literals and cross-array pointers
		// (e.g. a Lisp cons heap) use these.
		if len(e.Args) != 1 {
			return value{}, 0, errf(e.P, "%s takes one int address", e.Name)
		}
		a, err := fc.genExpect(e.Args[0], ast.Int)
		if err != nil {
			return value{}, 0, err
		}
		if e.Name == "fpeek" {
			v := fc.allocT(ast.Float)
			fc.emit(isa.Instr{Op: isa.OpFLd, C: int32(v.reg), A: int32(a.reg)})
			fc.release(a)
			return v, ast.Float, nil
		}
		v := fc.allocT(ast.Int)
		fc.emit(isa.Instr{Op: isa.OpLd, C: int32(v.reg), A: int32(a.reg)})
		fc.release(a)
		return v, ast.Int, nil
	case "poke", "fpoke":
		if len(e.Args) != 2 {
			return value{}, 0, errf(e.P, "%s takes an int address and a value", e.Name)
		}
		a, err := fc.genExpect(e.Args[0], ast.Int)
		if err != nil {
			return value{}, 0, err
		}
		want := ast.Int
		if e.Name == "fpoke" {
			want = ast.Float
		}
		x, err := fc.genExpect(e.Args[1], want)
		if err != nil {
			fc.release(a)
			return value{}, 0, err
		}
		op := isa.OpSt
		if e.Name == "fpoke" {
			op = isa.OpFSt
		}
		fc.emit(isa.Instr{Op: op, A: int32(a.reg), B: int32(x.reg)})
		fc.release(x)
		fc.release(a)
		return value{}, ast.Void, nil
	case "icall0", "icall1", "icall2", "icall3":
		n := int(e.Name[5] - '0')
		if len(e.Args) != n+1 {
			return value{}, 0, errf(e.P, "%s takes %d arguments", e.Name, n+1)
		}
		fp, err := fc.genExpect(e.Args[0], ast.Int)
		if err != nil {
			return value{}, 0, err
		}
		res := fc.allocT(ast.Int)
		base := fc.ir.allocRun(n)
		for i := 0; i < n; i++ {
			a, err := fc.genExpect(e.Args[i+1], ast.Int)
			if err != nil {
				return value{}, 0, err
			}
			fc.emit(isa.Instr{Op: isa.OpMov, C: int32(base + i), A: int32(a.reg)})
			fc.release(a)
		}
		// The callee's own signature determines how many staged
		// arguments it consumes.
		fc.emit(isa.Instr{Op: isa.OpICall, A: int32(fp.reg), B: int32(base), C: int32(res.reg)})
		for i := n - 1; i >= 0; i-- {
			fc.ir.free(base + i)
		}
		fc.release(fp)
		return res, ast.Int, nil
	}

	fs, ok := fc.m.funcs[e.Name]
	if !ok {
		return value{}, 0, errf(e.P, "undefined function %s", e.Name)
	}
	fd := fs.decl
	if len(e.Args) != len(fd.Params) {
		return value{}, 0, errf(e.P, "%s takes %d arguments, got %d", e.Name, len(fd.Params), len(e.Args))
	}
	if fc.m.opts.InlineCalls && fc.inlineDepth < maxInlineDepth && fc.m.inlinable(fd) {
		return fc.genInlineCall(e, fd)
	}
	var res value
	if fd.Ret != ast.Void {
		res = fc.allocT(fd.Ret)
	}
	ni, nf := 0, 0
	for _, p := range fd.Params {
		if p.Type == ast.Float {
			nf++
		} else {
			ni++
		}
	}
	iBase := fc.ir.allocRun(ni)
	fBase := fc.fr.allocRun(nf)
	iOff, fOff := 0, 0
	for i, p := range fd.Params {
		a, err := fc.genExpect(e.Args[i], p.Type)
		if err != nil {
			return value{}, 0, err
		}
		if p.Type == ast.Float {
			fc.emit(isa.Instr{Op: isa.OpFMov, C: int32(fBase + fOff), A: int32(a.reg)})
			fOff++
		} else {
			fc.emit(isa.Instr{Op: isa.OpMov, C: int32(iBase + iOff), A: int32(a.reg)})
			iOff++
		}
		fc.release(a)
	}
	resReg := int32(-1)
	if fd.Ret != ast.Void {
		resReg = int32(res.reg)
	}
	fc.emit(isa.Instr{Op: isa.OpCall, A: int32(iBase), B: int32(fBase), C: resReg, Target: int32(fs.index)})
	for i := ni - 1; i >= 0; i-- {
		fc.ir.free(iBase + i)
	}
	for i := nf - 1; i >= 0; i-- {
		fc.fr.free(fBase + i)
	}
	if fd.Ret == ast.Void {
		return value{}, ast.Void, nil
	}
	return res, fd.Ret, nil
}

// Package compiled holds the ahead-of-time generated Go bodies of
// the 15 workload analogues (internal/vm/codegen). Each generated
// file registers its entry with vm.RegisterCompiled under the
// program's content digest, so importing this package (internal/
// engine blank-imports it) makes vm.Load bind native code for any
// program whose digest matches — every other program keeps the fast
// interpreter. Build with -tags branchprof_nocodegen to drop the
// generated bodies entirely.
//
// Regenerate with `go generate ./internal/workloads/compiled` (or
// `make generate`); `make gencheck` fails when the committed files
// are stale. The files are verified bit-identical to the fast
// interpreter by this package's differential tests, the fuel/cancel
// cadence tests, and the codegen legs of the vm fuzz suite.
package compiled

//go:generate go run branchprof/cmd/vmcodegen -out .

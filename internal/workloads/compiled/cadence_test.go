package compiled

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"branchprof/internal/vm"
)

// Fuel and cancellation cadence for the codegen backend, mirroring the
// vm package's fuel_cadence_test.go: generated code emits the fuel
// check and the Done/Sample poll before every instruction, so every
// event must land at exactly the reference counts — there is no
// codegen-only cadence delta. (The one documented codegen-only
// behavioural delta is the unsupported-icall panic; see docs/PERF.md.)

// TestCodegenFuelExactAtCount: ErrFuel fires with Instrs equal to the
// configured fuel, including at and around the 4096-instruction poll
// boundary.
func TestCodegenFuelExactAtCount(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := loadCompiled(t, prog)
	for _, fuel := range []uint64{1, 17, 4095, 4096, 4097, 100000} {
		res, err := im.Run(input, &vm.Config{Fuel: fuel})
		if !errors.Is(err, vm.ErrFuel) {
			t.Fatalf("fuel=%d: err = %v, want ErrFuel", fuel, err)
		}
		if res.Instrs != fuel {
			t.Errorf("fuel=%d: stopped after %d instructions", fuel, res.Instrs)
		}
		if want := fmt.Sprintf("after %d instructions", fuel); !strings.Contains(err.Error(), want) {
			t.Errorf("fuel=%d: error %q does not report the exact count", fuel, err)
		}
	}
}

// TestCodegenSampleCadence: the Sample hook fires every 4096 retired
// instructions with the same stamps and the same outermost-first call
// stacks as the interpreter.
func TestCodegenSampleCadence(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := loadCompiled(t, prog)
	type sample struct {
		at    uint64
		stack []int32
	}
	collect := func(runner func(*vm.Config) (*vm.Result, error)) []sample {
		var out []sample
		_, err := runner(&vm.Config{
			Fuel: 1 << 20,
			Sample: func(stack []int32, instrs uint64) {
				out = append(out, sample{instrs, append([]int32(nil), stack...)})
			},
		})
		if !errors.Is(err, vm.ErrFuel) {
			t.Fatalf("err = %v, want ErrFuel", err)
		}
		return out
	}
	cg := collect(func(c *vm.Config) (*vm.Result, error) { return im.Run(input, c) })
	interp := collect(func(c *vm.Config) (*vm.Result, error) { return im.RunInterpreter(input, c) })
	if len(cg) < 100 {
		t.Fatalf("only %d samples over %d instructions", len(cg), 1<<20)
	}
	if len(cg) != len(interp) {
		t.Fatalf("sample count: interp=%d codegen=%d", len(interp), len(cg))
	}
	for i := range cg {
		if cg[i].at%4096 != 0 {
			t.Fatalf("sample %d at instruction %d, not a poll-cadence multiple", i, cg[i].at)
		}
		if cg[i].at != interp[i].at {
			t.Fatalf("sample %d stamp: interp=%d codegen=%d", i, interp[i].at, cg[i].at)
		}
		if len(cg[i].stack) != len(interp[i].stack) {
			t.Fatalf("sample %d stack depth: interp=%d codegen=%d",
				i, len(interp[i].stack), len(cg[i].stack))
		}
		for j := range cg[i].stack {
			if cg[i].stack[j] != interp[i].stack[j] {
				t.Fatalf("sample %d stack[%d]: interp=%d codegen=%d",
					i, j, interp[i].stack[j], cg[i].stack[j])
			}
		}
	}
}

// TestCodegenCancelWithinPollWindow: closing Done from inside the
// Sample hook pins the observation point; cancellation must land
// within one 4096-instruction poll window, at the same instruction
// count the interpreter reports.
func TestCodegenCancelWithinPollWindow(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := loadCompiled(t, prog)
	run := func(runner func(*vm.Config) (*vm.Result, error)) (closeAt uint64, res *vm.Result, err error) {
		done := make(chan struct{})
		closed := false
		res, err = runner(&vm.Config{
			Done: done,
			Sample: func(stack []int32, instrs uint64) {
				if !closed && instrs >= 100000 {
					closed = true
					closeAt = instrs
					close(done)
				}
			},
		})
		return closeAt, res, err
	}
	cAt, cRes, cErr := run(func(c *vm.Config) (*vm.Result, error) { return im.Run(input, c) })
	iAt, iRes, iErr := run(func(c *vm.Config) (*vm.Result, error) { return im.RunInterpreter(input, c) })
	for _, tc := range []struct {
		name string
		at   uint64
		res  *vm.Result
		err  error
	}{{"codegen", cAt, cRes, cErr}, {"interp", iAt, iRes, iErr}} {
		if !errors.Is(tc.err, vm.ErrCancelled) {
			t.Fatalf("%s: err = %v, want ErrCancelled", tc.name, tc.err)
		}
		if tc.res.Instrs < tc.at || tc.res.Instrs-tc.at > 4096 {
			t.Errorf("%s: closed at %d, cancelled at %d (window > 4096)",
				tc.name, tc.at, tc.res.Instrs)
		}
	}
	if cAt != iAt || cRes.Instrs != iRes.Instrs || cErr.Error() != iErr.Error() {
		t.Errorf("cancellation diverged: codegen closed %d stopped %d (%v); interp closed %d stopped %d (%v)",
			cAt, cRes.Instrs, cErr, iAt, iRes.Instrs, iErr)
	}
}

// TestCodegenCancelPreClosed: a Done channel closed before the run is
// observed at the very first poll point — zero instructions retired.
func TestCodegenCancelPreClosed(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := loadCompiled(t, prog)
	done := make(chan struct{})
	close(done)
	res, err := im.Run(input, &vm.Config{Done: done})
	if !errors.Is(err, vm.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Instrs != 0 {
		t.Errorf("pre-closed Done stopped after %d instructions, want 0", res.Instrs)
	}
	if !strings.Contains(err.Error(), "after 0 instructions") {
		t.Errorf("error %q does not report immediate cancellation", err)
	}
}

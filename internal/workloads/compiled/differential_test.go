package compiled

import (
	"bytes"
	"fmt"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// The generated bodies must be observationally identical to the fast
// interpreter — which was itself verified bit-identical to the
// reference interpreter — on every workload, every dataset, and every
// configuration: same Result counters, same output bytes, same error
// classification with exact trap messages and instruction counts.
// These tests are the proof obligation behind SemanticsVersion
// staying at 1 while Run dispatches to native code.

// compileWorkload compiles a workload analogue and returns its program
// together with its first dataset's input.
func compileWorkload(t *testing.T, name string) (*isa.Program, []byte) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, w.Datasets[0].Gen()
}

// loadCompiled loads an image and demands that a generated body is
// actually bound to it — otherwise every comparison below would
// vacuously pass on the interpreter-vs-interpreter fallback.
func loadCompiled(t *testing.T, prog *isa.Program) *vm.Image {
	t.Helper()
	if vm.CompiledFor(prog) == nil {
		t.Fatalf("%s: no compiled body registered for this program digest", prog.Source)
	}
	if !vm.CompiledEnabled() {
		t.Fatalf("compiled backend disabled in test process")
	}
	return vm.Load(prog)
}

// cgCompare demands field-exact equality between an interpreter result
// and a codegen result, mirroring the vm package's diffCompare.
func cgCompare(t *testing.T, label string, interp, cg *vm.Result, interpErr, cgErr error) {
	t.Helper()
	if (interpErr == nil) != (cgErr == nil) {
		t.Fatalf("%s: error mismatch: interp=%v codegen=%v", label, interpErr, cgErr)
	}
	if interpErr != nil && interpErr.Error() != cgErr.Error() {
		t.Fatalf("%s: error text mismatch:\n  interp:  %v\n  codegen: %v", label, interpErr, cgErr)
	}
	if interp == nil || cg == nil {
		if interp != cg {
			t.Fatalf("%s: result nilness mismatch: interp=%v codegen=%v", label, interp, cg)
		}
		return
	}
	if interp.Instrs != cg.Instrs {
		t.Errorf("%s: Instrs: interp=%d codegen=%d", label, interp.Instrs, cg.Instrs)
	}
	if interp.ExitCode != cg.ExitCode {
		t.Errorf("%s: ExitCode: interp=%d codegen=%d", label, interp.ExitCode, cg.ExitCode)
	}
	if !bytes.Equal(interp.Output, cg.Output) {
		t.Errorf("%s: Output differs (%d vs %d bytes)", label, len(interp.Output), len(cg.Output))
	}
	for i := range interp.SiteTaken {
		if interp.SiteTaken[i] != cg.SiteTaken[i] || interp.SiteTotal[i] != cg.SiteTotal[i] {
			t.Errorf("%s: site %d: interp=%d/%d codegen=%d/%d", label, i,
				interp.SiteTaken[i], interp.SiteTotal[i], cg.SiteTaken[i], cg.SiteTotal[i])
		}
	}
	if interp.Jumps != cg.Jumps {
		t.Errorf("%s: Jumps: interp=%d codegen=%d", label, interp.Jumps, cg.Jumps)
	}
	if interp.DirectCalls != cg.DirectCalls || interp.DirectReturns != cg.DirectReturns {
		t.Errorf("%s: direct calls/returns: interp=%d/%d codegen=%d/%d", label,
			interp.DirectCalls, interp.DirectReturns, cg.DirectCalls, cg.DirectReturns)
	}
	if interp.IndirectCalls != cg.IndirectCalls || interp.IndirectReturns != cg.IndirectReturns {
		t.Errorf("%s: indirect calls/returns: interp=%d/%d codegen=%d/%d", label,
			interp.IndirectCalls, interp.IndirectReturns, cg.IndirectCalls, cg.IndirectReturns)
	}
	if interp.MaxDepth != cg.MaxDepth {
		t.Errorf("%s: MaxDepth: interp=%d codegen=%d", label, interp.MaxDepth, cg.MaxDepth)
	}
	if (interp.PerPC == nil) != (cg.PerPC == nil) {
		t.Fatalf("%s: PerPC nilness mismatch", label)
	}
	for fi := range interp.PerPC {
		for pc := range interp.PerPC[fi] {
			if interp.PerPC[fi][pc] != cg.PerPC[fi][pc] {
				t.Errorf("%s: PerPC[%d][%d]: interp=%d codegen=%d", label, fi, pc,
					interp.PerPC[fi][pc], cg.PerPC[fi][pc])
			}
		}
	}
}

// TestCodegenRegisteredForAllWorkloads: every workload analogue must
// have a generated body bound by digest — a silent fallback to the
// interpreter here would invalidate the pr10-codegen benchmark entry.
func TestCodegenRegisteredForAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if vm.CompiledFor(prog) == nil {
			t.Errorf("%s: no compiled body registered (stale generated files? run `go generate ./internal/workloads/compiled`)", w.Name)
		}
	}
}

// TestCodegenDifferentialWorkloads runs every dataset of every
// workload through the interpreter and the generated body and demands
// bit-identical results, in plain mode and (first dataset) PerPC mode.
func TestCodegenDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			im := loadCompiled(t, prog)
			for di, ds := range w.Datasets {
				input := ds.Gen()
				interp, interpErr := im.RunInterpreter(input, &vm.Config{})
				cg, cgErr := im.Run(input, &vm.Config{})
				cgCompare(t, ds.Name, interp, cg, interpErr, cgErr)
				if di == 0 {
					interpP, interpErrP := im.RunInterpreter(input, &vm.Config{PerPC: true})
					cgP, cgErrP := im.Run(input, &vm.Config{PerPC: true})
					cgCompare(t, ds.Name+"/perpc", interpP, cgP, interpErrP, cgErrP)
				}
			}
		})
	}
}

// diffTracer records the full event stream for stream-level comparison.
type diffTracer struct {
	events []string
}

func (d *diffTracer) Branch(site int32, taken bool, instrs uint64) {
	d.events = append(d.events, fmt.Sprintf("br %d %v @%d", site, taken, instrs))
}

func (d *diffTracer) Transfer(kind vm.TransferKind, instrs uint64) {
	d.events = append(d.events, fmt.Sprintf("xf %v @%d", kind, instrs))
}

// TestCodegenDifferentialTraced compares the complete control-transfer
// event streams (order, kinds, sites, instruction stamps) between the
// interpreter and the generated instrumented bodies. li exercises the
// indirect-call dispatch switch; the others cover direct call/return
// and jump stamping.
func TestCodegenDifferentialTraced(t *testing.T) {
	for _, name := range []string{"li", "eqntott", "tomcatv"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, input := compileWorkload(t, name)
			im := loadCompiled(t, prog)
			interpTr, cgTr := &diffTracer{}, &diffTracer{}
			interp, interpErr := im.RunInterpreter(input, &vm.Config{Trace: interpTr})
			cg, cgErr := im.Run(input, &vm.Config{Trace: cgTr})
			cgCompare(t, name, interp, cg, interpErr, cgErr)
			if len(interpTr.events) != len(cgTr.events) {
				t.Fatalf("event count: interp=%d codegen=%d", len(interpTr.events), len(cgTr.events))
			}
			for i := range interpTr.events {
				if interpTr.events[i] != cgTr.events[i] {
					t.Fatalf("event %d: interp=%q codegen=%q", i, interpTr.events[i], cgTr.events[i])
				}
			}
		})
	}
}

// TestCodegenDifferentialFuelSweep proves the generated fuel check
// fires at exactly the interpreter's instruction counts, including at
// and around the 4096-instruction poll boundary, with every partial
// counter identical.
func TestCodegenDifferentialFuelSweep(t *testing.T) {
	for _, name := range []string{"li", "tomcatv"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, input := compileWorkload(t, name)
			im := loadCompiled(t, prog)
			full, err := im.Run(input, &vm.Config{})
			if err != nil {
				t.Fatal(err)
			}
			n := full.Instrs
			fuels := []uint64{1, 2, 3, 7, 100, 4095, 4096, 4097, 8192,
				n / 3, n / 2, n/2 + 1, n - 4097, n - 4096, n - 1, n, n + 1}
			for _, fuel := range fuels {
				if fuel == 0 || fuel > n+1 {
					continue
				}
				interp, interpErr := im.RunInterpreter(input, &vm.Config{Fuel: fuel})
				cg, cgErr := im.Run(input, &vm.Config{Fuel: fuel})
				cgCompare(t, fmt.Sprintf("fuel=%d", fuel), interp, cg, interpErr, cgErr)
			}
		})
	}
}

// TestCodegenDifferentialTracedUnderFuel crosses tracing with fuel
// exhaustion: the partial event streams up to the cut must match
// exactly, not just the final counters.
func TestCodegenDifferentialTracedUnderFuel(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := loadCompiled(t, prog)
	for _, fuel := range []uint64{4096, 100000} {
		interpTr, cgTr := &diffTracer{}, &diffTracer{}
		interp, interpErr := im.RunInterpreter(input, &vm.Config{Fuel: fuel, Trace: interpTr})
		cg, cgErr := im.Run(input, &vm.Config{Fuel: fuel, Trace: cgTr})
		cgCompare(t, fmt.Sprintf("fuel=%d", fuel), interp, cg, interpErr, cgErr)
		if len(interpTr.events) != len(cgTr.events) {
			t.Fatalf("fuel=%d: event count: interp=%d codegen=%d", fuel, len(interpTr.events), len(cgTr.events))
		}
		for i := range interpTr.events {
			if interpTr.events[i] != cgTr.events[i] {
				t.Fatalf("fuel=%d event %d: interp=%q codegen=%q", fuel, i, interpTr.events[i], cgTr.events[i])
			}
		}
	}
}

// TestCodegenBackendToggle: SetCompiledEnabled(false) must route Run
// back to the interpreter without unregistering anything, and the
// results must of course still agree.
func TestCodegenBackendToggle(t *testing.T) {
	prog, input := compileWorkload(t, "eqntott")
	im := loadCompiled(t, prog)
	on, _ := im.Run(input, &vm.Config{})
	prev := vm.SetCompiledEnabled(false)
	off, _ := im.Run(input, &vm.Config{})
	vm.SetCompiledEnabled(prev)
	if !prev {
		t.Fatal("compiled backend was already disabled entering the test")
	}
	if vm.CompiledFor(prog) == nil {
		t.Fatal("disabling dispatch unregistered the body")
	}
	cgCompare(t, "toggle", on, off, nil, nil)
}

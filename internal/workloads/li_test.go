package workloads

import (
	"strings"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
)

func runWorkloadDataset(t *testing.T, wname, dsname string) *vm.Result {
	t.Helper()
	w, err := ByName(wname)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(wname, w.Source, mfc.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, ds := range w.Datasets {
		if ds.Name == dsname {
			res, err := vm.Run(prog, ds.Gen(), nil)
			if err != nil {
				t.Fatalf("run %s/%s: %v", wname, dsname, err)
			}
			return res
		}
	}
	t.Fatalf("no dataset %s in %s", dsname, wname)
	return nil
}

// TestLiQueensCorrect verifies the interpreter computes the known
// n-queens solution counts.
func TestLiQueensCorrect(t *testing.T) {
	res := runWorkloadDataset(t, "li", "8queens")
	if !strings.Contains(string(res.Output), "92\n") {
		t.Errorf("8queens output = %q, want it to contain 92", res.Output)
	}
	if !strings.Contains(string(res.Output), "errs 0") {
		t.Errorf("8queens reported interpreter errors: %q", res.Output)
	}
	res = runWorkloadDataset(t, "li", "9queens")
	if !strings.Contains(string(res.Output), "352\n") {
		t.Errorf("9queens output = %q, want it to contain 352", res.Output)
	}
}

// TestLiSieveCorrect verifies the prime count below the sieve limit.
func TestLiSieveCorrect(t *testing.T) {
	res := runWorkloadDataset(t, "li", "sievel")
	// primes below 260: there are 55 primes up to 257.
	if !strings.Contains(string(res.Output), "55\n") {
		t.Errorf("sieve output = %q, want it to contain 55", res.Output)
	}
	if res.IndirectCalls == 0 {
		t.Error("li should perform indirect calls for builtin dispatch")
	}
}

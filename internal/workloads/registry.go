// Package workloads holds the program sample base: MF-language
// analogues of every program in the paper's Table 2, each with
// datasets mirroring the paper's dataset spread. Proprietary SPEC
// sources and the Multiflow compiler are unavailable, so each analogue
// implements the same algorithmic core (see DESIGN.md §2 and §4); what
// the experiments need preserved is the *class* of branch behaviour —
// FORTRAN-style counted loops versus C-style data-dependent control —
// and these re-implementations preserve it by construction.
package workloads

import (
	"fmt"
	"sort"
)

// Lang classifies a workload the way the paper's figures split them.
type Lang uint8

// Classes.
const (
	Fortran Lang = iota // FORTRAN / floating point (figures 1a, 2a)
	C                   // C / integer (figures 1b, 2b, 3b)
)

// String names the class as the paper does.
func (l Lang) String() string {
	if l == Fortran {
		return "FORTRAN/FP"
	}
	return "C/Integer"
}

// Dataset is one input for a workload. Gen must be deterministic.
type Dataset struct {
	Name string
	Desc string
	Gen  func() []byte
}

// Workload is one benchmark program with its datasets.
type Workload struct {
	Name     string
	Lang     Lang
	Desc     string
	Source   string // complete MF source (prelude included)
	Datasets []Dataset
}

// MultiDataset reports whether the workload takes part in
// cross-dataset prediction experiments (needs at least two datasets).
func (w *Workload) MultiDataset() bool { return len(w.Datasets) >= 2 }

var registry []*Workload

func register(w *Workload) {
	if len(w.Datasets) == 0 {
		// Programs that read no dataset still need one run slot.
		w.Datasets = []Dataset{{Name: "-", Desc: "program does not read a dataset", Gen: func() []byte { return nil }}}
	}
	registry = append(registry, w)
}

// All returns every workload, sorted FORTRAN-class first and by name
// within a class (stable order for reports).
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Lang != out[j].Lang {
			return out[i].Lang < out[j].Lang
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns all workload names in report order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

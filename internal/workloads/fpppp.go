package workloads

import (
	"fmt"
	"strings"
)

// fpppp: the quantum chemistry two-electron integral kernel whose
// inner loop is "a giant expression with no flow of control". The
// analogue generates a straight-line basic block of several hundred
// floating-point statements at registration time (deterministically)
// and iterates it natoms^3-proportionally many times, so the 4atoms
// and 8atoms datasets differ in trip count exactly as the SPEC
// parameter settings did. Expressions are contractive (coefficients
// below one) so values stay bounded. One constant-guarded branch per
// block mirrors fpppp's 1% dead code in Table 1.
const fppppHeaderMF = `
const FPCHK = 0;

var fel[512] float;

func initfel() {
	var i int;
	for (i = 0; i < 512; i = i + 1) {
		fel[i] = sin(float(i) * 0.113) * 0.4 + 0.5;
	}
}
`

// fppppBlock generates the giant basic block as an MF function taking
// an index and returning a contribution.
func fppppBlock(stmts int, seed uint64) string {
	r := newRng(seed)
	var b strings.Builder
	b.WriteString("func block(base int) float {\n")
	nt := 8
	for i := 0; i < nt; i++ {
		fmt.Fprintf(&b, "\tvar t%d float = fel[(base + %d) & 511];\n", i, r.intn(512))
	}
	for s := 0; s < stmts; s++ {
		d := r.intn(nt)
		a := r.intn(nt)
		c := r.intn(nt)
		k := r.intn(512)
		coefA := float64(r.intn(800))/1000.0 + 0.05
		coefB := float64(r.intn(800))/1000.0 + 0.05
		switch r.intn(6) {
		case 0:
			fmt.Fprintf(&b, "\tt%d = t%d * %.3f + fel[(base + %d) & 511] * %.3f;\n", d, a, coefA, k, coefB)
		case 1:
			fmt.Fprintf(&b, "\tt%d = t%d * %.3f - t%d * %.3f;\n", d, a, coefA, c, coefB)
		case 2:
			fmt.Fprintf(&b, "\tt%d = (t%d + t%d) * %.3f;\n", d, a, c, coefA*0.5)
		case 3:
			fmt.Fprintf(&b, "\tt%d = t%d / (1.0 + t%d * t%d);\n", d, a, c, c)
		case 4:
			fmt.Fprintf(&b, "\tt%d = sqrt(fabs(t%d * %.3f + %.3f));\n", d, a, coefA, coefB)
		default:
			fmt.Fprintf(&b, "\tt%d = t%d * t%d * %.3f + fel[(base + %d) & 511] * %.3f;\n", d, a, c, coefA*0.6, k, coefB)
		}
	}
	b.WriteString("\tif (FPCHK != 0) {\n\t\tif (t0 != t0) { puts(\"block nan\"); }\n\t}\n")
	// A handful of biased data-dependent conditionals: fpppp's branch
	// behaviour in the paper is ~83% majority-direction at roughly one
	// branch per 170 instructions, not branch-free. Two integral-index
	// screens (statically biased by construction), one threshold test
	// and one near-even float comparison give a stable mix.
	fmt.Fprintf(&b, "\tif ((base & 7) != 0) {\n\t\tt0 = t0 * 0.98 + 0.004;\n\t}\n")
	fmt.Fprintf(&b, "\tif ((base & 15) < 13) {\n\t\tt1 = t1 * 0.99 + 0.002;\n\t}\n")
	fmt.Fprintf(&b, "\tif (t2 > 0.05) {\n\t\tt3 = t3 * 0.97 + 0.01;\n\t}\n")
	fmt.Fprintf(&b, "\tif (t4 > t5) {\n\t\tt6 = t6 * 0.98 + 0.005;\n\t}\n")
	b.WriteString("\treturn (t0 + t1 + t2 + t3 + t4 + t5 + t6 + t7) * 0.125;\n}\n")
	return b.String()
}

const fppppMainMF = `
func main() int {
	initfel();
	var natoms int = geti();
	var iters int = natoms * natoms * natoms * 12;
	var it int;
	var s float = 0.0;
	for (it = 0; it < iters; it = it + 1) {
		s = s + block(it * 7);
		if (s > 1000000.0) {
			s = s * 0.0001;
		}
	}
	puts("fpppp energy ");
	putf(s);
	putc('\n');
	return natoms;
}
`

func init() {
	src := withPrelude(fppppHeaderMF + fppppBlock(170, 424242) + fppppMainMF)
	register(&Workload{
		Name: "fpppp", Lang: Fortran,
		Desc:   "quantum chemistry: giant straight-line basic block, iterated",
		Source: src,
		Datasets: []Dataset{
			{Name: "4atoms", Desc: "4-atom parameter setting", Gen: func() []byte { return []byte("4\n") }},
			{Name: "8atoms", Desc: "8-atom parameter setting", Gen: func() []byte { return []byte("8\n") }},
		},
	})
}

package workloads

import (
	"fmt"
	"strings"
)

// eqntott: converts boolean equations to truth tables. The input is a
// header "N M" (input variable count, output count) followed by M
// equations in reverse-polish form — tokens vK (input variable K),
// oK (previously computed output K), & | !, each equation ended by
// ';'. The program enumerates all 2^N input assignments, evaluates
// every output with a stack machine, sorts the rows of the resulting
// truth table with quicksort, and prints a checksum — the same
// enumerate/evaluate/sort structure as the SPEC program.
const eqntottMF = `
const MAXTOK = 4096;
const MAXOUT = 32;
const MAXROWS = 4096;

var rop[MAXTOK] int;   // 0=var, 1=out-ref, 2=and, 3=or, 4=not
var rarg[MAXTOK] int;
var ostart[MAXOUT] int;
var oend[MAXOUT] int;
var outval[MAXOUT] int;
var rows[MAXROWS] int;
var stk[64] int;

var ntok[1] int;

// parse reads one equation's RPN into the token arrays; returns 0 at
// end of input.
func parse(out int) int {
	ostart[out] = ntok[0];
	var c int = getc();
	while (c != -1 && c != ';') {
		if (c == 'v' || c == 'o') {
			var kind int = 0;
			if (c == 'o') { kind = 1; }
			var n int = 0;
			c = getc();
			while (c >= '0' && c <= '9') {
				n = n * 10 + (c - '0');
				c = getc();
			}
			rop[ntok[0]] = kind;
			rarg[ntok[0]] = n;
			ntok[0] = ntok[0] + 1;
		} else {
			if (c == '&') { rop[ntok[0]] = 2; ntok[0] = ntok[0] + 1; }
			if (c == '|') { rop[ntok[0]] = 3; ntok[0] = ntok[0] + 1; }
			if (c == '!') { rop[ntok[0]] = 4; ntok[0] = ntok[0] + 1; }
			c = getc();
		}
	}
	oend[out] = ntok[0];
	if (c == -1 && ostart[out] == oend[out]) {
		return 0;
	}
	return 1;
}

// eval runs one equation's RPN for the given input assignment.
func eval(out int, assign int) int {
	var sp int = 0;
	var t int;
	for (t = ostart[out]; t < oend[out]; t = t + 1) {
		switch (rop[t]) {
		case 0:
			stk[sp] = (assign >> rarg[t]) & 1;
			sp = sp + 1;
		case 1:
			stk[sp] = outval[rarg[t]];
			sp = sp + 1;
		case 2:
			sp = sp - 1;
			stk[sp - 1] = stk[sp - 1] & stk[sp];
		case 3:
			sp = sp - 1;
			stk[sp - 1] = stk[sp - 1] | stk[sp];
		case 4:
			stk[sp - 1] = 1 - stk[sp - 1];
		}
	}
	return stk[0];
}

// qsort sorts rows[lo..hi] ascending (Hoare partition).
func qsort(lo int, hi int) {
	if (lo >= hi) {
		return;
	}
	var pivot int = rows[(lo + hi) / 2];
	var i int = lo;
	var j int = hi;
	while (i <= j) {
		while (rows[i] < pivot) { i = i + 1; }
		while (rows[j] > pivot) { j = j - 1; }
		if (i <= j) {
			var t int = rows[i];
			rows[i] = rows[j];
			rows[j] = t;
			i = i + 1;
			j = j - 1;
		}
	}
	qsort(lo, j);
	qsort(i, hi);
}

func main() int {
	var nin int = geti();
	var nout int = geti();
	var o int;
	for (o = 0; o < nout; o = o + 1) {
		if (parse(o) == 0) {
			break;
		}
	}

	var nrows int = 1 << nin;
	var a int;
	for (a = 0; a < nrows; a = a + 1) {
		var bits int = 0;
		for (o = 0; o < nout; o = o + 1) {
			outval[o] = eval(o, a);
			bits = (bits << 1) | outval[o];
		}
		rows[a] = (bits << nin) | a;
	}

	qsort(0, nrows - 1);

	var sum int = 0;
	for (a = 0; a < nrows; a = a + 1) {
		sum = (sum * 131 + rows[a]) & 0xffffffff;
	}
	puts("rows ");
	putiln(nrows);
	puts("checksum ");
	putiln(sum);
	return nrows;
}
`

// xorRPN emits RPN for x^y given RPN strings for x and y:
// (x|y) & !(x&y).
func xorRPN(x, y string) string {
	return fmt.Sprintf("%s %s | %s %s & ! &", x, y, x, y)
}

// adderEquations builds the naive ripple-carry adder equation set for
// k-bit operands: inputs a_i = v(i), b_i = v(k+i); outputs alternate
// s_0, c_0, s_1, c_1, ... so carry references point at earlier
// outputs.
func adderEquations(k int) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d\n", 2*k, 2*k)
	out := 0
	for i := 0; i < k; i++ {
		a := fmt.Sprintf("v%d", i)
		bb := fmt.Sprintf("v%d", k+i)
		if i == 0 {
			fmt.Fprintf(&b, "%s ;\n", xorRPN(a, bb)) // s_0
			fmt.Fprintf(&b, "%s %s & ;\n", a, bb)    // c_0
		} else {
			carry := fmt.Sprintf("o%d", out-1)
			fmt.Fprintf(&b, "%s ;\n", xorRPN(xorRPN(a, bb), carry))            // s_i
			fmt.Fprintf(&b, "%s %s & %s %s | %s & | ;\n", a, bb, a, bb, carry) // c_i = ab | (a|b)c
		}
		out += 2
	}
	return []byte(b.String())
}

// priorityEquations builds a priority circuit over n request lines:
// grant_i = req_i & !req_{i-1} & ... & !req_0, plus a valid output.
func priorityEquations(n int) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d\n", n, n+1)
	for i := 0; i < n; i++ {
		expr := fmt.Sprintf("v%d", i)
		for j := 0; j < i; j++ {
			expr = fmt.Sprintf("%s v%d ! &", expr, j)
		}
		fmt.Fprintf(&b, "%s ;\n", expr)
	}
	valid := "v0"
	for i := 1; i < n; i++ {
		valid = fmt.Sprintf("%s v%d |", valid, i)
	}
	fmt.Fprintf(&b, "%s ;\n", valid)
	return []byte(b.String())
}

func init() {
	register(&Workload{
		Name: "eqntott", Lang: C,
		Desc:   "boolean equations to truth tables (enumerate, evaluate, sort)",
		Source: withPrelude(eqntottMF),
		Datasets: []Dataset{
			{Name: "add4", Desc: "naive 4-bit adder equations", Gen: func() []byte { return adderEquations(4) }},
			{Name: "add5", Desc: "naive 5-bit adder equations", Gen: func() []byte { return adderEquations(5) }},
			{Name: "add6", Desc: "naive 6-bit adder equations", Gen: func() []byte { return adderEquations(6) }},
			{Name: "intpri", Desc: "priority circuit", Gen: func() []byte { return priorityEquations(10) }},
		},
	})
}

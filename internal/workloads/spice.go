package workloads

import (
	"fmt"
	"strings"
)

// spice2g6: electronic circuit simulation by modified nodal analysis.
// The analogue reads a netlist of resistors, current sources, diodes,
// capacitors and pulse sources, finds the DC operating point with
// Newton iteration over linearized device stamps (Gaussian
// elimination each iteration), and optionally runs a transient with
// backward-Euler companion models — the same solver skeleton as
// spice's DC/transient analyses. The dataset spread copies the
// paper's: five appendix-A-style example circuits (circuit2 is tiny —
// the paper notes it runs 1/10,000th of greybig), two adder-style
// nonlinear networks, and two gray-code-counter transients of very
// different lengths.
//
// Netlist grammar (one device per line):
//
//	N <nodes>            node count (ground is node 0, not counted)
//	R <a> <b> <ohms>
//	I <a> <b> <amps>     current source a->b
//	D <a> <b>            diode, anode a cathode b
//	C <a> <b> <farads>
//	P <a> <b> <amps> <halfperiod>   square-wave current source
//	T <steps> <dt>       transient request
//	E                    end
const spiceMF = `
const MAXN = 24;
const MAXDEV = 128;
const SPCHK = 0;

var g[576] float;     // MAXN*MAXN conductance matrix
var rhs[MAXN] float;
var x[MAXN] float;
var xold[MAXN] float;
var xprev[MAXN] float; // previous timestep solution

var dtype[MAXDEV] int; // 0 R, 1 I, 2 D, 3 C, 4 P
var da[MAXDEV] int;
var db[MAXDEV] int;
var dval[MAXDEV] float;
var dval2[MAXDEV] float;
var ndev[1] int;
var nn[1] int;        // nodes (excluding ground)
var tsteps[1] int;
var tdt[1] float;
var iterstotal[1] int;

func readnet() {
	var c int = getc();
	while (c != -1 && c != 'E') {
		if (c == 'N') {
			nn[0] = geti();
		} else if (c == 'R' || c == 'I' || c == 'C') {
			var k int = ndev[0];
			if (c == 'R') { dtype[k] = 0; }
			if (c == 'I') { dtype[k] = 1; }
			if (c == 'C') { dtype[k] = 3; }
			da[k] = geti();
			db[k] = geti();
			dval[k] = getf();
			ndev[0] = k + 1;
		} else if (c == 'D') {
			dtype[ndev[0]] = 2;
			da[ndev[0]] = geti();
			db[ndev[0]] = geti();
			ndev[0] = ndev[0] + 1;
		} else if (c == 'P') {
			dtype[ndev[0]] = 4;
			da[ndev[0]] = geti();
			db[ndev[0]] = geti();
			dval[ndev[0]] = getf();
			dval2[ndev[0]] = float(geti());
			ndev[0] = ndev[0] + 1;
		} else if (c == 'T') {
			tsteps[0] = geti();
			tdt[0] = getf();
		}
		c = getc();
		while (c == ' ' || c == '\n' || c == '\r' || c == '\t') {
			c = getc();
		}
	}
}

// stampG adds conductance gv between nodes a and b (0 = ground).
func stampG(a int, b int, gv float) {
	if (a > 0) { g[(a - 1) * MAXN + (a - 1)] = g[(a - 1) * MAXN + (a - 1)] + gv; }
	if (b > 0) { g[(b - 1) * MAXN + (b - 1)] = g[(b - 1) * MAXN + (b - 1)] + gv; }
	if (a > 0 && b > 0) {
		g[(a - 1) * MAXN + (b - 1)] = g[(a - 1) * MAXN + (b - 1)] - gv;
		g[(b - 1) * MAXN + (a - 1)] = g[(b - 1) * MAXN + (a - 1)] - gv;
	}
}

// stampI adds current iv flowing a->b.
func stampI(a int, b int, iv float) {
	if (a > 0) { rhs[a - 1] = rhs[a - 1] - iv; }
	if (b > 0) { rhs[b - 1] = rhs[b - 1] + iv; }
}

func nodev(a int) float {
	if (a == 0) { return 0.0; }
	return x[a - 1];
}

// stamp builds the linearized system at the current solution
// estimate. step < 0 means pure DC (no capacitor/pulse companions).
func stamp(step int) {
	var i int;
	var j int;
	for (i = 0; i < nn[0]; i = i + 1) {
		rhs[i] = 0.0;
		for (j = 0; j < nn[0]; j = j + 1) {
			g[i * MAXN + j] = 0.0;
		}
		// gmin to ground keeps the matrix nonsingular
		g[i * MAXN + i] = 0.000000001;
	}
	var k int;
	for (k = 0; k < ndev[0]; k = k + 1) {
		var a int = da[k];
		var b int = db[k];
		switch (dtype[k]) {
		case 0:
			stampG(a, b, 1.0 / dval[k]);
		case 1:
			stampI(a, b, dval[k]);
		case 2: {
			// diode: I = Is*(exp(V/Vt)-1), linearized at V
			var v float = nodev(a) - nodev(b);
			if (v > 0.8) { v = 0.8; }
			if (v < -2.0) { v = -2.0; }
			var is float = 0.00000000001;
			var vt float = 0.026;
			var ex float = exp(v / vt);
			var id float = is * (ex - 1.0);
			var gd float = is / vt * ex + 0.000000001;
			stampG(a, b, gd);
			stampI(a, b, id - gd * v);
			if (SPCHK != 0) {
				if (gd != gd) { puts("diode nan\n"); }
			}
		}
		case 3: {
			if (step >= 0) {
				// backward Euler companion: Geq = C/dt
				var geq float = dval[k] / tdt[0];
				var vp float = 0.0;
				if (a > 0) { vp = vp + xprev[a - 1]; }
				if (b > 0) { vp = vp - xprev[b - 1]; }
				stampG(a, b, geq);
				stampI(a, b, -geq * vp);
			}
		}
		case 4: {
			var amp float = dval[k];
			if (step >= 0) {
				var half int = int(dval2[k]);
				if ((step / half) % 2 == 1) { amp = 0.0; }
			}
			stampI(a, b, amp);
		}
		}
	}
}

// solve runs in-place Gaussian elimination with partial pivoting on
// g/rhs, leaving the solution in x.
func solve() {
	var n int = nn[0];
	var i int;
	var j int;
	var k int;
	for (k = 0; k < n; k = k + 1) {
		var piv int = k;
		var best float = fabs(g[k * MAXN + k]);
		for (i = k + 1; i < n; i = i + 1) {
			if (fabs(g[i * MAXN + k]) > best) {
				best = fabs(g[i * MAXN + k]);
				piv = i;
			}
		}
		if (piv != k) {
			for (j = k; j < n; j = j + 1) {
				var t float = g[k * MAXN + j];
				g[k * MAXN + j] = g[piv * MAXN + j];
				g[piv * MAXN + j] = t;
			}
			var t2 float = rhs[k];
			rhs[k] = rhs[piv];
			rhs[piv] = t2;
		}
		for (i = k + 1; i < n; i = i + 1) {
			var f float = g[i * MAXN + k] / g[k * MAXN + k];
			if (f != 0.0) {
				for (j = k; j < n; j = j + 1) {
					g[i * MAXN + j] = g[i * MAXN + j] - f * g[k * MAXN + j];
				}
				rhs[i] = rhs[i] - f * rhs[k];
			}
		}
	}
	for (i = n - 1; i >= 0; i = i - 1) {
		var s float = rhs[i];
		for (j = i + 1; j < n; j = j + 1) {
			s = s - g[i * MAXN + j] * x[j];
		}
		x[i] = s / g[i * MAXN + i];
	}
}

// newton iterates stamp/solve to convergence; returns iterations.
func newton(step int) int {
	var it int;
	for (it = 0; it < 60; it = it + 1) {
		var i int;
		for (i = 0; i < nn[0]; i = i + 1) {
			xold[i] = x[i];
		}
		stamp(step);
		solve();
		var worst float = 0.0;
		for (i = 0; i < nn[0]; i = i + 1) {
			// damp large Newton steps for diode stability
			var dx float = x[i] - xold[i];
			if (dx > 0.5) { x[i] = xold[i] + 0.5; dx = 0.5; }
			if (dx < -0.5) { x[i] = xold[i] - 0.5; dx = -0.5; }
			if (fabs(dx) > worst) { worst = fabs(dx); }
		}
		if (worst < 0.000001) {
			iterstotal[0] = iterstotal[0] + it + 1;
			return it + 1;
		}
	}
	iterstotal[0] = iterstotal[0] + 60;
	return 60;
}

func main() int {
	readnet();
	var i int;
	for (i = 0; i < nn[0]; i = i + 1) { x[i] = 0.0; }
	newton(-1);
	puts("op");
	for (i = 0; i < nn[0]; i = i + 1) {
		putc(' ');
		putf(x[i]);
	}
	putc('\n');
	if (tsteps[0] > 0) {
		var chk float = 0.0;
		var s int;
		for (s = 0; s < tsteps[0]; s = s + 1) {
			for (i = 0; i < nn[0]; i = i + 1) { xprev[i] = x[i]; }
			newton(s);
			chk = chk + x[0];
		}
		puts("tran ");
		putf(chk / float(tsteps[0]));
		putc('\n');
	}
	puts("iters ");
	putiln(iterstotal[0]);
	return iterstotal[0] % 1000;
}
`

// netlist builders -----------------------------------------------------

// ladderNet builds a resistor/diode ladder with nNodes nodes driven by
// a current source; diodeEvery controls nonlinearity density.
func ladderNet(nNodes int, diodeEvery int, drive float64, tran int) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "N %d\n", nNodes)
	fmt.Fprintf(&b, "I 0 1 %.4f\n", drive)
	for i := 1; i < nNodes; i++ {
		fmt.Fprintf(&b, "R %d %d %d\n", i, i+1, 800+137*i%700)
		fmt.Fprintf(&b, "R %d 0 %d\n", i, 2000+211*i%1500)
		if diodeEvery > 0 && i%diodeEvery == 0 {
			fmt.Fprintf(&b, "D %d 0\n", i)
		}
	}
	fmt.Fprintf(&b, "R %d 0 1500\n", nNodes)
	if tran > 0 {
		fmt.Fprintf(&b, "C 1 0 0.000001\nP 0 1 0.002 7\nT %d 0.0001\n", tran)
	}
	b.WriteString("E\n")
	return []byte(b.String())
}

// greyNet builds the gray-code-counter-style transient: pulse-driven
// RC/diode stages that switch at staggered rates.
func greyNet(stages, steps int) []byte {
	var b strings.Builder
	n := stages * 2
	fmt.Fprintf(&b, "N %d\n", n)
	for s := 0; s < stages; s++ {
		a := s*2 + 1
		bn := s*2 + 2
		fmt.Fprintf(&b, "P 0 %d 0.004 %d\n", a, 5*(s+1))
		fmt.Fprintf(&b, "R %d %d 900\n", a, bn)
		fmt.Fprintf(&b, "R %d 0 2600\n", a)
		fmt.Fprintf(&b, "C %d 0 0.000002\n", bn)
		fmt.Fprintf(&b, "D %d 0\n", bn)
		if s > 0 {
			fmt.Fprintf(&b, "R %d %d 1800\n", s*2, a)
		}
	}
	fmt.Fprintf(&b, "T %d 0.0001\nE\n", steps)
	return []byte(b.String())
}

func init() {
	register(&Workload{
		Name: "spice2g6", Lang: Fortran,
		Desc:   "electronic circuit simulator (nodal analysis, Newton, transient)",
		Source: withPrelude(spiceMF),
		Datasets: []Dataset{
			{Name: "circuit1", Desc: "diode ladder, DC operating point", Gen: func() []byte { return ladderNet(8, 3, 0.003, 0) }},
			{Name: "circuit2", Desc: "three-resistor divider (very short run)", Gen: func() []byte {
				return []byte("N 2\nI 0 1 0.001\nR 1 2 1000\nR 2 0 2200\nR 1 0 4700\nE\n")
			}},
			{Name: "circuit3", Desc: "bridge with two diodes, DC", Gen: func() []byte { return ladderNet(6, 2, 0.005, 0) }},
			{Name: "circuit4", Desc: "wider nonlinear ladder, DC", Gen: func() []byte { return ladderNet(12, 2, 0.004, 0) }},
			{Name: "circuit5", Desc: "nonlinear ladder with a short transient", Gen: func() []byte { return ladderNet(10, 3, 0.004, 40) }},
			{Name: "add_bjt", Desc: "4-bit adder network, junction-heavy, transient", Gen: func() []byte { return ladderNet(16, 1, 0.002, 120) }},
			{Name: "add_fet", Desc: "4-bit adder network, sparser junctions, transient", Gen: func() []byte { return ladderNet(16, 4, 0.002, 180) }},
			{Name: "greysmall", Desc: "gray-code counter, smaller input", Gen: func() []byte { return greyNet(5, 400) }},
			{Name: "greybig", Desc: "gray-code counter, larger input", Gen: func() []byte { return greyNet(6, 2200) }},
		},
	})
}

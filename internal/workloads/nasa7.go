package workloads

// nasa7: the seven synthetic NASA Ames kernels. Each kernel is a
// scaled-down but structurally faithful analogue: mxm (matrix
// multiply), cfft2d (complex FFT, here radix-2 over 256 points with a
// bit-reversal permutation), cholsky (Cholesky factorization), btrix
// (block tridiagonal solve, scalarized), gmtry (Gaussian elimination
// geometry setup), emit (vortex emission loops), and vpenta
// (pentadiagonal inversion). The KERNCHK constant guards per-element
// verification in the hottest loops — the dynamically dead code that
// Table 1 reports at 20% for nasa7.
const nasa7MF = `
const M = 48;
const FFTN = 512;
const KERNCHK = 0;

var ma[2304] float;
var mb[2304] float;
var mc[2304] float;
var re[512] float;
var im[512] float;
var chol[2304] float;
var diag[M] float;
var pd1[256] float;
var pd2[256] float;
var pd3[256] float;
var pd4[256] float;
var pd5[256] float;
var prhs[256] float;

func kmxm() float {
	var i int;
	var j int;
	var k int;
	for (i = 0; i < M; i = i + 1) {
		for (j = 0; j < M; j = j + 1) {
			ma[i * M + j] = float((i + j * 3) % 9) * 0.11 + 0.1;
			mb[i * M + j] = float((i * 5 + j) % 7) * 0.13 - 0.2;
		}
	}
	for (i = 0; i < M; i = i + 1) {
		for (j = 0; j < M; j = j + 1) {
			var s float = 0.0;
			for (k = 0; k < M; k = k + 1) {
				s = s + ma[i * M + k] * mb[k * M + j];
				if (KERNCHK != 0) {
					if (s != s) { puts("mxm nan\n"); }
				}
				if (KERNCHK == 2) {
					if (k < 0) { puts("mxm index\n"); }
				}
			}
			mc[i * M + j] = s;
		}
	}
	return mc[5 * M + 5];
}

func kfft() float {
	var i int;
	for (i = 0; i < FFTN; i = i + 1) {
		re[i] = sin(float(i) * 0.1) + 0.5 * sin(float(i) * 0.05);
		im[i] = 0.0;
	}
	// bit reversal permutation
	var j int = 0;
	for (i = 0; i < FFTN - 1; i = i + 1) {
		if (i < j) {
			var tr float = re[i]; re[i] = re[j]; re[j] = tr;
			var ti float = im[i]; im[i] = im[j]; im[j] = ti;
		}
		var m int = FFTN / 2;
		while (m >= 1 && j >= m) {
			j = j - m;
			m = m / 2;
		}
		j = j + m;
	}
	// butterflies
	var le int = 1;
	while (le < FFTN) {
		var le2 int = le * 2;
		var ang float = -3.14159265358979 / float(le);
		var k int;
		for (k = 0; k < le; k = k + 1) {
			var wr float = cos(ang * float(k));
			var wi float = sin(ang * float(k));
			for (i = k; i < FFTN; i = i + le2) {
				var p int = i + le;
				var tr float = wr * re[p] - wi * im[p];
				var ti float = wr * im[p] + wi * re[p];
				re[p] = re[i] - tr;
				im[p] = im[i] - ti;
				re[i] = re[i] + tr;
				im[i] = im[i] + ti;
				if (KERNCHK != 0) {
					if (re[i] != re[i]) { puts("fft nan\n"); }
				}
			}
		}
		le = le2;
	}
	return re[1];
}

func kcholsky() float {
	var i int;
	var j int;
	var k int;
	for (i = 0; i < M; i = i + 1) {
		for (j = 0; j < M; j = j + 1) {
			chol[i * M + j] = 0.0;
			if (i == j) { chol[i * M + j] = float(M) + float(i % 3); }
			if (i == j + 1 || j == i + 1) { chol[i * M + j] = 1.0; }
		}
	}
	for (j = 0; j < M; j = j + 1) {
		var s float = chol[j * M + j];
		for (k = 0; k < j; k = k + 1) {
			s = s - chol[j * M + k] * chol[j * M + k];
		}
		diag[j] = sqrt(s);
		for (i = j + 1; i < M; i = i + 1) {
			var t float = chol[i * M + j];
			for (k = 0; k < j; k = k + 1) {
				t = t - chol[i * M + k] * chol[j * M + k];
			}
			chol[i * M + j] = t / diag[j];
		}
	}
	return diag[M - 1];
}

func kbtrix() float {
	// scalarized block-tridiagonal sweep: forward eliminate, back
	// substitute over 4 interleaved systems
	var sys int;
	var s float = 0.0;
	for (sys = 0; sys < 4; sys = sys + 1) {
		var i int;
		for (i = 0; i < 200; i = i + 1) {
			pd1[i] = 0.1 + float((i + sys) % 5) * 0.02;
			pd2[i] = 1.0 + float(i % 3) * 0.1;
			pd3[i] = 0.1 + float(i % 7) * 0.01;
			prhs[i] = float(i % 11) * 0.3;
		}
		for (i = 1; i < 200; i = i + 1) {
			var m float = pd1[i] / pd2[i - 1];
			pd2[i] = pd2[i] - m * pd3[i - 1];
			prhs[i] = prhs[i] - m * prhs[i - 1];
		}
		prhs[199] = prhs[199] / pd2[199];
		for (i = 198; i >= 0; i = i - 1) {
			prhs[i] = (prhs[i] - pd3[i] * prhs[i + 1]) / pd2[i];
		}
		s = s + prhs[0];
	}
	return s;
}

func kgmtry() float {
	// Gaussian elimination on a dense, diagonally dominant system
	var n int = 24;
	var i int;
	var j int;
	var k int;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			ma[i * M + j] = 1.0 / (float(i + j) + 1.0);
		}
		ma[i * M + i] = ma[i * M + i] + 2.0;
		prhs[i] = 1.0;
	}
	for (k = 0; k < n; k = k + 1) {
		for (i = k + 1; i < n; i = i + 1) {
			var f float = ma[i * M + k] / ma[k * M + k];
			for (j = k; j < n; j = j + 1) {
				ma[i * M + j] = ma[i * M + j] - f * ma[k * M + j];
			}
			prhs[i] = prhs[i] - f * prhs[k];
		}
	}
	var s float = 0.0;
	for (i = n - 1; i >= 0; i = i - 1) {
		var t float = prhs[i];
		for (j = i + 1; j < n; j = j + 1) {
			t = t - ma[i * M + j] * pd4[j];
		}
		pd4[i] = t / ma[i * M + i];
		s = s + pd4[i];
	}
	return s;
}

func kemit() float {
	// vortex emission: trigonometric updates over particle arrays
	var i int;
	var t int;
	var s float = 0.0;
	for (t = 0; t < 12; t = t + 1) {
		for (i = 0; i < 200; i = i + 1) {
			var th float = float(i) * 0.031 + float(t) * 0.5;
			pd5[i] = pd5[i] + 0.01 * cos(th) / (1.0 + 0.001 * float(i));
			s = s + pd5[i] * sin(th);
		}
	}
	return s;
}

func kvpenta() float {
	// pentadiagonal inversion, scalar form
	var i int;
	for (i = 0; i < 200; i = i + 1) {
		pd1[i] = 0.05;
		pd2[i] = 0.1;
		pd3[i] = 1.0 + float(i % 2) * 0.2;
		pd4[i] = 0.1;
		pd5[i] = 0.05;
		prhs[i] = float(i % 9) * 0.1;
	}
	for (i = 2; i < 200; i = i + 1) {
		var m1 float = pd2[i] / pd3[i - 1];
		pd3[i] = pd3[i] - m1 * pd4[i - 1];
		pd4[i] = pd4[i] - m1 * pd5[i - 1];
		prhs[i] = prhs[i] - m1 * prhs[i - 1];
		var m2 float = pd1[i] / pd3[i - 2];
		pd2[i] = pd2[i] - m2 * pd4[i - 2];
		prhs[i] = prhs[i] - m2 * prhs[i - 2];
		if (KERNCHK != 0) {
			if (pd3[i] == 0.0) { puts("vpenta pivot\n"); }
		}
	}
	prhs[199] = prhs[199] / pd3[199];
	prhs[198] = (prhs[198] - pd4[198] * prhs[199]) / pd3[198];
	for (i = 197; i >= 0; i = i - 1) {
		prhs[i] = (prhs[i] - pd4[i] * prhs[i + 1] - pd5[i] * prhs[i + 2]) / pd3[i];
	}
	return prhs[0];
}

func main() int {
	var rep int;
	var sum float = 0.0;
	for (rep = 0; rep < 4; rep = rep + 1) {
		sum = sum + kmxm();
		sum = sum + kfft();
		sum = sum + kcholsky();
		sum = sum + kbtrix();
		sum = sum + kgmtry();
		sum = sum + kemit();
		sum = sum + kvpenta();
	}
	puts("nasa7 sum ");
	putf(sum);
	putc('\n');
	return 7;
}
`

func init() {
	register(&Workload{
		Name: "nasa7", Lang: Fortran,
		Desc:   "seven synthetic NASA kernels (mxm, fft, cholsky, btrix, gmtry, emit, vpenta)",
		Source: withPrelude(nasa7MF),
	})
}

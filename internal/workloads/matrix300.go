package workloads

// matrix300: dense matrix multiply and Gaussian solve. The SPEC
// program ran 300x300; the analogue uses 60x60 to keep the simulated
// instruction budget sane — the branch structure (perfectly counted
// loops plus a pivot-selection conditional) is unchanged by N.
//
// The CHECKRES block mirrors why the paper's Table 1 shows matrix300
// with 29% dead code: per-element verification guarded by a constant
// flag the compiler could fold away, executed in the innermost loop.
const matrix300MF = `
const N = 100;
const CHECKRES = 0;

var a[10000] float;
var b[10000] float;
var c[10000] float;
var rhs[100] float;
var x[100] float;

func initmats() {
	var i int;
	var j int;
	for (i = 0; i < N; i = i + 1) {
		for (j = 0; j < N; j = j + 1) {
			a[i * N + j] = float((i * 7 + j * 3) % 13) * 0.25 + 0.5;
			b[i * N + j] = float((i * 5 + j * 11) % 17) * 0.125 - 0.75;
		}
		rhs[i] = float(i % 9) + 1.0;
	}
	// Diagonal dominance keeps the product matrix well conditioned
	// for the later solve.
	for (i = 0; i < N; i = i + 1) {
		a[i * N + i] = a[i * N + i] + 25.0;
		b[i * N + i] = b[i * N + i] + 25.0;
	}
}

func matmul() {
	var i int;
	var j int;
	var k int;
	for (i = 0; i < N; i = i + 1) {
		for (j = 0; j < N; j = j + 1) {
			var s float = 0.0;
			for (k = 0; k < N; k = k + 1) {
				s = s + a[i * N + k] * b[k * N + j];
				if (CHECKRES != 0) {
					// dead verification: recompute and compare
					if (fabs(s) > 1000000.0) {
						puts("overflow\n");
					}
				}
				if (CHECKRES == 2) {
					// dead bounds audit
					if (k < 0 || k >= N) {
						puts("index\n");
					}
				}
				if (CHECKRES == 3) {
					// dead operand trace
					putf(a[i * N + k]);
				}
			}
			c[i * N + j] = s;
		}
	}
}

// solve performs Gaussian elimination with partial pivoting on a copy
// of c, solving c x = rhs.
func solve() {
	var i int;
	var j int;
	var k int;
	for (k = 0; k < N; k = k + 1) {
		var piv int = k;
		var best float = fabs(c[k * N + k]);
		for (i = k + 1; i < N; i = i + 1) {
			var v float = fabs(c[i * N + k]);
			if (v > best) {
				best = v;
				piv = i;
			}
		}
		if (piv != k) {
			for (j = k; j < N; j = j + 1) {
				var t float = c[k * N + j];
				c[k * N + j] = c[piv * N + j];
				c[piv * N + j] = t;
			}
			var t2 float = rhs[k];
			rhs[k] = rhs[piv];
			rhs[piv] = t2;
		}
		for (i = k + 1; i < N; i = i + 1) {
			var f float = c[i * N + k] / c[k * N + k];
			for (j = k; j < N; j = j + 1) {
				c[i * N + j] = c[i * N + j] - f * c[k * N + j];
			}
			rhs[i] = rhs[i] - f * rhs[k];
		}
	}
	for (i = N - 1; i >= 0; i = i - 1) {
		var s float = rhs[i];
		for (j = i + 1; j < N; j = j + 1) {
			s = s - c[i * N + j] * x[j];
		}
		x[i] = s / c[i * N + i];
	}
}

func main() int {
	initmats();
	matmul();
	var sum float = 0.0;
	var i int;
	for (i = 0; i < N * N; i = i + 1) {
		sum = sum + c[i];
	}
	puts("trace ");
	putf(sum);
	putc('\n');
	solve();
	var xs float = 0.0;
	for (i = 0; i < N; i = i + 1) {
		xs = xs + x[i] * x[i];
	}
	puts("xnorm ");
	putf(sqrt(xs));
	putc('\n');
	return int(fabs(sum)) % 1000;
}
`

func init() {
	register(&Workload{
		Name: "matrix300", Lang: Fortran,
		Desc:   "dense matrix multiply and Gaussian solve (300x300 in SPEC, 100x100 here)",
		Source: withPrelude(matrix300MF),
	})
}

package workloads

import (
	"fmt"
	"strings"
)

// espresso: PLA (two-level boolean cover) minimization. The analogue
// reads cubes in the classic PLA text format and runs the
// minimizer's inner loop structure: repeated distance-1 merging and
// single-cube containment passes over the cover until it stops
// shrinking. Cubes are bit-pair encoded (care mask + value mask), so
// the hot loops are pairwise mask comparisons — pointer-free but
// exactly as data-dependent as the original's cube operations. The
// constant ESPCHK guard in the pairwise loop mirrors espresso's 18%
// dynamically dead code in Table 1.
const espressoMF = `
const MAXCUBES = 1024;
const ESPCHK = 0;

var care[MAXCUBES] int;
var val[MAXCUBES] int;
var live[MAXCUBES] int;
var ncubes[1] int;
var nvars[1] int;

func popcount(x int) int {
	var n int = 0;
	while (x != 0) {
		x = x & (x - 1);
		n = n + 1;
	}
	return n;
}

// readpla parses ".i N" then cube lines of 0/1/- characters; lines
// starting with '.' other than .i are skipped.
func readpla() {
	var c int = getc();
	while (c != -1) {
		if (c == '.') {
			c = getc();
			if (c == 'i') {
				nvars[0] = geti();
			} else {
				while (c != -1 && c != '\n') {
					c = getc();
				}
			}
			c = getc();
		} else if (c == '0' || c == '1' || c == '-') {
			var cm int = 0;
			var vm int = 0;
			var bit int = 0;
			while (c == '0' || c == '1' || c == '-') {
				if (c == '0') {
					cm = cm | (1 << bit);
				}
				if (c == '1') {
					cm = cm | (1 << bit);
					vm = vm | (1 << bit);
				}
				bit = bit + 1;
				c = getc();
			}
			if (ncubes[0] < MAXCUBES) {
				care[ncubes[0]] = cm;
				val[ncubes[0]] = vm;
				live[ncubes[0]] = 1;
				ncubes[0] = ncubes[0] + 1;
			}
			while (c != -1 && c != '\n') {
				c = getc();
			}
			c = getc();
		} else {
			c = getc();
		}
	}
}

// contains reports whether cube i covers cube j.
func contains(i int, j int) int {
	if ((care[i] & ~care[j]) != 0) {
		return 0;
	}
	if (((val[i] ^ val[j]) & care[i]) != 0) {
		return 0;
	}
	return 1;
}

// mergepass combines distance-1 pairs; returns number of merges.
func mergepass() int {
	var merges int = 0;
	var i int;
	var j int;
	for (i = 0; i < ncubes[0]; i = i + 1) {
		if (live[i] == 0) {
			continue;
		}
		for (j = i + 1; j < ncubes[0]; j = j + 1) {
			if (live[j] == 0) {
				continue;
			}
			if (ESPCHK != 0) {
				if (care[i] == 0 && care[j] == 0) {
					puts("degenerate pair\n");
				}
			}
			if (ESPCHK == 2) {
				// dead cube-consistency audit
				if ((val[i] & ~care[i]) != 0 || (val[j] & ~care[j]) != 0) {
					puts("stray value bits\n");
				}
			}
			if (care[i] == care[j]) {
				var d int = (val[i] ^ val[j]) & care[i];
				if (d != 0 && (d & (d - 1)) == 0) {
					// distance one: drop the differing variable
					care[i] = care[i] & ~d;
					val[i] = val[i] & ~d;
					live[j] = 0;
					merges = merges + 1;
				}
			}
		}
	}
	return merges;
}

// containpass removes covered cubes; returns removals.
func containpass() int {
	var removed int = 0;
	var i int;
	var j int;
	for (i = 0; i < ncubes[0]; i = i + 1) {
		if (live[i] == 0) {
			continue;
		}
		for (j = 0; j < ncubes[0]; j = j + 1) {
			if (i == j || live[j] == 0) {
				continue;
			}
			if (contains(i, j) == 1) {
				live[j] = 0;
				removed = removed + 1;
			}
		}
	}
	return removed;
}

func main() int {
	readpla();
	var pass int = 0;
	var changed int = 1;
	while (changed != 0 && pass < 40) {
		changed = mergepass() + containpass();
		pass = pass + 1;
	}
	var count int = 0;
	var sum int = 0;
	var lits int = 0;
	var i int;
	for (i = 0; i < ncubes[0]; i = i + 1) {
		if (live[i] == 1) {
			count = count + 1;
			lits = lits + popcount(care[i]);
			sum = (sum * 31 + care[i] * 7 + val[i]) & 0xffffff;
		}
	}
	puts("in ");     putiln(ncubes[0]);
	puts("cubes ");  putiln(count);
	puts("lits ");   putiln(lits);
	puts("chk ");    putiln(sum);
	return count;
}
`

// plaInput synthesizes a PLA whose cubes come from expanding a few
// generator cubes into minterm clusters, so minimization has real
// merging work to do.
func plaInput(nVars, nGenerators, expansionsPer int, seed uint64) []byte {
	r := newRng(seed)
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o 1\n", nVars)
	for g := 0; g < nGenerators; g++ {
		gen := make([]byte, nVars)
		for i := range gen {
			gen[i] = "01-"[r.intn(3)]
		}
		for e := 0; e < expansionsPer; e++ {
			cube := make([]byte, nVars)
			copy(cube, gen)
			for i := range cube {
				if cube[i] == '-' && r.intn(100) < 65 {
					cube[i] = "01"[r.intn(2)]
				}
			}
			fmt.Fprintf(&b, "%s 1\n", cube)
		}
	}
	b.WriteString(".e\n")
	return []byte(b.String())
}

func init() {
	register(&Workload{
		Name: "espresso", Lang: C,
		Desc:   "PLA optimizer (two-level cover minimization)",
		Source: withPrelude(espressoMF),
		Datasets: []Dataset{
			{Name: "bca", Desc: "wide PLA, strong clustering", Gen: func() []byte { return plaInput(16, 20, 22, 51) }},
			{Name: "cps", Desc: "medium PLA, moderate clustering", Gen: func() []byte { return plaInput(14, 26, 14, 52) }},
			{Name: "ti", Desc: "narrow PLA, many cubes", Gen: func() []byte { return plaInput(12, 32, 16, 53) }},
			{Name: "tial", Desc: "wide PLA, sparse clustering", Gen: func() []byte { return plaInput(18, 15, 24, 54) }},
		},
	})
}

package workloads

// doduc: Monte Carlo simulation of a nuclear reactor component — the
// analogue tracks neutrons through a two-region core/reflector
// geometry with energy-dependent interaction sampling: scatter,
// absorb, fission and leakage decisions drive nested data-dependent
// conditionals over floating point state, the control character the
// SPEC program is known for. The tiny/small/ref datasets set the
// particle count, like the SPEC datasets that differ mainly in how
// long they run.
const doducMF = `
const DODCHK = 0;

var tally[8] int;

// xsect returns an interaction cross-section that depends on energy
// band and region.
func xsect(e float, region int) float {
	var base float = 0.3;
	if (region == 1) {
		base = 0.18;
	}
	if (e > 1.0) {
		return base * 0.5 + 0.02 / e;
	}
	if (e > 0.1) {
		return base + 0.05 * (1.0 - e);
	}
	return base * 2.0 + 0.1 * (0.1 - e);
}

func track1() {
	var x float = 0.0;
	var dir float = 1.0;
	var e float = 2.0 + frnd() * 3.0;
	var alive int = 1;
	var steps int = 0;
	while (alive == 1 && steps < 200) {
		steps = steps + 1;
		var region int = 0;
		if (x > 5.0 || x < -5.0) {
			region = 1;
		}
		var sigma float = xsect(e, region);
		var dist float = -log(frnd() + 0.0000001) / sigma;
		x = x + dir * dist * 0.3;
		if (x > 9.0 || x < -9.0) {
			tally[0] = tally[0] + 1; // leaked
			alive = 0;
		} else {
			var u float = frnd();
			if (u < 0.06 && region == 0) {
				tally[1] = tally[1] + 1; // absorbed in core
				alive = 0;
			} else if (u < 0.09) {
				tally[2] = tally[2] + 1; // absorbed in reflector
				alive = 0;
			} else if (u < 0.11 && e > 1.5 && region == 0) {
				tally[3] = tally[3] + 1; // fission
				alive = 0;
			} else {
				// scatter: mild energy loss and mostly forward
				// scattering, so the per-step branches stay biased
				e = e * (0.8 + 0.15 * frnd());
				if (frnd() < 0.1) {
					dir = -dir;
				}
				if (e < 0.001) {
					tally[4] = tally[4] + 1; // thermalized
					alive = 0;
				}
				tally[5] = tally[5] + 1;
				if (DODCHK != 0) {
					if (e != e) { puts("bad energy\n"); }
				}
			}
		}
	}
	if (steps >= 200) {
		tally[6] = tally[6] + 1;
	}
}

func main() int {
	srand(99991);
	var n int = geti();
	var i int;
	for (i = 0; i < n; i = i + 1) {
		track1();
	}
	puts("leak ");    putiln(tally[0]);
	puts("abscore "); putiln(tally[1]);
	puts("absrefl "); putiln(tally[2]);
	puts("fission "); putiln(tally[3]);
	puts("thermal "); putiln(tally[4]);
	puts("scatter "); putiln(tally[5]);
	puts("stuck ");   putiln(tally[6]);
	return tally[0] % 1000;
}
`

func init() {
	register(&Workload{
		Name: "doduc", Lang: Fortran,
		Desc:   "Monte Carlo nuclear reactor component simulation",
		Source: withPrelude(doducMF),
		Datasets: []Dataset{
			{Name: "tiny", Desc: "2,000 particles", Gen: func() []byte { return []byte("2000\n") }},
			{Name: "small", Desc: "8,000 particles", Gen: func() []byte { return []byte("8000\n") }},
			{Name: "ref", Desc: "20,000 particles", Gen: func() []byte { return []byte("20000\n") }},
		},
	})
}

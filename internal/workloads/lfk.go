package workloads

// lfk: a subset of the Livermore FORTRAN Kernels — the classic
// collection of inner loops from production physics codes. Eight
// kernels run in sequence under an outer repetition loop, mirroring
// subroutine KERNEL: hydro fragment (k1), incomplete Cholesky style
// sweep (k2), inner product (k3), banded linear equations (k4),
// tridiagonal elimination (k5), first-order recurrence (k6), equation
// of state (k7), and difference predictors (k10 in the original
// numbering).
const lfkMF = `
const NN = 101;
const REPS = 150;

var u[NN] float;
var v[NN] float;
var w[NN] float;
var x[NN] float;
var y[NN] float;
var z[NN] float;
// kernel 2 (ICCG) works over the halving-partition layout, which
// needs ~2*NN elements (sum of the halving partition sizes).
var xx[256] float;
var vv[256] float;

func initarrays() {
	var i int;
	for (i = 0; i < NN; i = i + 1) {
		// Coefficient arrays stay below 1 in magnitude so the
		// recurrences remain stable across repetitions.
		u[i] = float(i % 7) * 0.1 + 0.01;
		v[i] = float(i % 11) * 0.05 + 0.02;
		w[i] = float(i % 13) * 0.06 + 0.03;
		x[i] = float(i % 5) * 0.1 + 0.04;
		y[i] = float(i % 3) * 0.2 + 0.05;
		z[i] = float(i % 17) * 0.05 + 0.06;
	}
}

func k1hydro() float {
	var q float = 0.5;
	var r float = 0.3;
	var t float = 0.02;
	var k int;
	for (k = 0; k < NN - 12; k = k + 1) {
		x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
	}
	return x[7];
}

func k2iccg() float {
	var j int;
	for (j = 0; j < 256; j = j + 1) {
		xx[j] = float(j % 9) * 0.1 + 0.01;
		vv[j] = float(j % 7) * 0.05 + 0.02;
	}
	var ii int = NN;
	var ipntp int = 0;
	while (ii > 1) {
		var ipnt int = ipntp;
		ipntp = ipntp + ii;
		ii = ii / 2;
		var i int = ipntp;
		var k int;
		for (k = ipnt + 1; k < ipntp - 1; k = k + 2) {
			i = i + 1;
			xx[i] = xx[k] - vv[k] * xx[k - 1] - vv[k + 1] * xx[k + 1];
		}
	}
	return xx[ipntp];
}

func k3inner() float {
	var q float = 0.0;
	var k int;
	for (k = 0; k < NN; k = k + 1) {
		q = q + z[k] * x[k];
	}
	return q;
}

func k4banded() float {
	var m int = 24;
	var k int;
	var j int;
	for (j = 12; j < NN - 13; j = j + m) {
		var temp float = 0.0;
		for (k = 0; k < 12; k = k + 1) {
			temp = temp + x[j + k] * y[k];
		}
		x[j - 1] = y[4] * (x[j - 1] - temp);
	}
	return x[23];
}

func k5tridiag() float {
	var i int;
	for (i = 1; i < NN; i = i + 1) {
		x[i] = z[i] * (y[i] - x[i - 1]);
	}
	return x[NN - 1];
}

func k6recur() float {
	var i int;
	for (i = 1; i < NN; i = i + 1) {
		w[i] = 0.01 + 0.5 * w[i - 1];
	}
	return w[NN - 1];
}

func k7state() float {
	var r float = 0.4;
	var t float = 0.025;
	var k int;
	for (k = 0; k < NN - 4; k = k + 1) {
		x[k] = u[k] + r * (z[k] + r * y[k]) +
			t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1]) +
			t * (u[k + 2] + r * (u[k + 1] + r * u[k])));
	}
	return x[11];
}

func k10diff() float {
	var k int;
	for (k = 4; k < NN; k = k + 1) {
		var br float = y[k] - v[k - 1];
		v[k - 1] = y[k];
		var cr float = br - w[k - 1];
		w[k - 1] = br;
		y[k] = cr * 1.0625 + u[k];
	}
	return y[NN - 1];
}

func main() int {
	var rep int;
	var sum float = 0.0;
	for (rep = 0; rep < REPS; rep = rep + 1) {
		initarrays();
		sum = sum + k1hydro();
		sum = sum + k2iccg();
		sum = sum + k3inner();
		sum = sum + k4banded();
		sum = sum + k5tridiag();
		sum = sum + k6recur();
		sum = sum + k7state();
		sum = sum + k10diff();
	}
	puts("lfk sum ");
	putf(sum);
	putc('\n');
	return REPS;
}
`

func init() {
	register(&Workload{
		Name: "lfk", Lang: Fortran,
		Desc:   "Livermore FORTRAN Kernels subset (8 kernels, subroutine KERNEL only)",
		Source: withPrelude(lfkMF),
	})
}

package workloads

// preludeMF is a small runtime library prepended to every workload's
// MF source: formatted output, input parsing, and a seeded linear
// congruential generator. The compiler has no include mechanism;
// concatenation at registration time plays that role.
const preludeMF = `
// ---- MF runtime prelude ----

// puti prints n in decimal.
func puti(n int) {
	if (n < 0) {
		putc('-');
		n = -n;
	}
	if (n >= 10) {
		puti(n / 10);
	}
	putc('0' + n % 10);
}

// puts prints the NUL-terminated string at int-memory address s.
func puts(s int) {
	var c int = peek(s);
	while (c != 0) {
		putc(c);
		s = s + 1;
		c = peek(s);
	}
}

// putiln prints n followed by a newline.
func putiln(n int) {
	puti(n);
	putc('\n');
}

// putf prints x with three decimal places. Non-finite or enormous
// values print as symbolic tokens rather than trapping.
func putf(x float) {
	if (x != x) {
		puts("nan");
		return;
	}
	if (x < 0.0) {
		putc('-');
		x = -x;
	}
	if (x > 900000000000000.0) {
		puts("huge");
		return;
	}
	var ip int = int(x);
	puti(ip);
	putc('.');
	var fr int = int((x - float(ip)) * 1000.0 + 0.5);
	if (fr >= 1000) { fr = 999; }
	putc('0' + fr / 100);
	putc('0' + (fr / 10) % 10);
	putc('0' + fr % 10);
}

// geti reads the next integer from the input, skipping anything that
// is not a digit or minus sign. Returns -999999999 at end of input.
func geti() int {
	var c int = getc();
	while (c != -1 && (c < '0' || c > '9') && c != '-') {
		c = getc();
	}
	if (c == -1) {
		return -999999999;
	}
	var neg int = 0;
	if (c == '-') {
		neg = 1;
		c = getc();
	}
	var n int = 0;
	while (c >= '0' && c <= '9') {
		n = n * 10 + (c - '0');
		c = getc();
	}
	if (neg != 0) {
		return -n;
	}
	return n;
}

// getf reads a decimal float (digits, optional fraction, optional
// leading minus). Returns -999999999.0 at end of input.
func getf() float {
	var c int = getc();
	while (c != -1 && (c < '0' || c > '9') && c != '-') {
		c = getc();
	}
	if (c == -1) {
		return -999999999.0;
	}
	var neg int = 0;
	if (c == '-') {
		neg = 1;
		c = getc();
	}
	var v float = 0.0;
	while (c >= '0' && c <= '9') {
		v = v * 10.0 + float(c - '0');
		c = getc();
	}
	if (c == '.') {
		c = getc();
		var scale float = 0.1;
		while (c >= '0' && c <= '9') {
			v = v + float(c - '0') * scale;
			scale = scale * 0.1;
			c = getc();
		}
	}
	if (c == 'e' || c == 'E') {
		c = getc();
		var eneg int = 0;
		if (c == '-') { eneg = 1; c = getc(); }
		var ex int = 0;
		while (c >= '0' && c <= '9') {
			ex = ex * 10 + (c - '0');
			c = getc();
		}
		while (ex > 0) {
			if (eneg != 0) { v = v * 0.1; } else { v = v * 10.0; }
			ex = ex - 1;
		}
	}
	if (neg != 0) {
		return -v;
	}
	return v;
}

var __seed[1] int = { 12345 };

// srand seeds the prelude's generator.
func srand(s int) {
	__seed[0] = s & 0x7fffffff;
	if (__seed[0] == 0) { __seed[0] = 1; }
}

// rnd returns a pseudo-random int in [0, 2^31).
func rnd() int {
	__seed[0] = (__seed[0] * 1103515245 + 12345) & 0x7fffffff;
	return __seed[0];
}

// frnd returns a pseudo-random float in [0, 1).
func frnd() float {
	return float(rnd()) / 2147483648.0;
}

// imin/imax/iabs: small integer helpers.
func imin(a int, b int) int { if (a < b) { return a; } return b; }
func imax(a int, b int) int { if (a > b) { return a; } return b; }
func iabs(a int) int { if (a < 0) { return -a; } return a; }

// ---- end prelude ----
`

// withPrelude returns the prelude followed by body.
func withPrelude(body string) string { return preludeMF + body }

// Prelude returns the MF runtime prelude so external programs (tools,
// examples) can build sources with the same helpers the workloads use.
func Prelude() string { return preludeMF }

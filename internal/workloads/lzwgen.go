package workloads

// LZW twin of the MF compress/uncompress workload. The dataset
// generators use it to prepare compressed inputs for the uncompress
// workload, and tests use it to validate the MF implementation
// bit-for-bit. Both implementations share the same parameters: 12-bit
// codes emitted as little-endian byte pairs, a 256-entry initial
// dictionary, and no dictionary reset (growth simply stops at 4096).

const (
	lzwMaxCodes = 4096
	lzwHashSize = 8192
)

// LZWCompress compresses data exactly as the MF workload does.
func LZWCompress(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	hkey := make([]int32, lzwHashSize) // key+1; 0 = empty
	hval := make([]int32, lzwHashSize)
	find := func(key int32) int32 {
		h := int32(int64(key) * 2654435761 & (lzwHashSize - 1))
		for hkey[h] != 0 {
			if hkey[h] == key+1 {
				return hval[h]
			}
			h = (h + 1) & (lzwHashSize - 1)
		}
		return -1
	}
	insert := func(key, code int32) {
		h := int32(int64(key) * 2654435761 & (lzwHashSize - 1))
		for hkey[h] != 0 {
			h = (h + 1) & (lzwHashSize - 1)
		}
		hkey[h] = key + 1
		hval[h] = code
	}
	var out []byte
	emit := func(code int32) {
		out = append(out, byte(code&0xff), byte(code>>8))
	}
	next := int32(256)
	w := int32(data[0])
	for _, b := range data[1:] {
		key := w*256 + int32(b)
		if c := find(key); c >= 0 {
			w = c
			continue
		}
		emit(w)
		if next < lzwMaxCodes {
			insert(key, next)
			next++
		}
		w = int32(b)
	}
	emit(w)
	return out
}

// LZWDecompress reverses LZWCompress.
func LZWDecompress(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	prefix := make([]int32, lzwMaxCodes)
	suffix := make([]byte, lzwMaxCodes)
	next := int32(256)
	read := func(i int) int32 {
		return int32(data[i]) | int32(data[i+1])<<8
	}
	expand := func(code int32) []byte {
		var stack []byte
		for code >= 256 {
			stack = append(stack, suffix[code])
			code = prefix[code]
		}
		stack = append(stack, byte(code))
		for i, j := 0, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
		return stack
	}
	var out []byte
	prev := read(0)
	out = append(out, expand(prev)...)
	for i := 2; i+1 < len(data); i += 2 {
		code := read(i)
		var entry []byte
		if code < next {
			entry = expand(code)
		} else {
			// KwKwK: the code being defined right now.
			entry = append(expand(prev), expand(prev)[0])
		}
		out = append(out, entry...)
		if next < lzwMaxCodes {
			prefix[next] = prev
			suffix[next] = entry[0]
			next++
		}
		prev = code
	}
	return out
}

package workloads

import (
	"fmt"
	"strings"
)

// rng is a small deterministic generator for dataset synthesis. Every
// dataset is produced from a fixed seed so runs are reproducible.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// intn returns a value in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pick returns a random element of xs.
func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

var cIdents = []string{
	"buf", "len", "ptr", "node", "next", "prev", "head", "tail", "tmp",
	"count", "size", "flags", "mode", "state", "depth", "hash", "key",
	"val", "index", "offset", "result", "status", "errcode", "ch", "tok",
}

var cTypes = []string{"int", "char", "long", "unsigned", "short"}

// cSourceText synthesizes systems-style C source of roughly n bytes —
// the character class of the paper's "cmprssc" dataset.
func cSourceText(n int, seed uint64) []byte {
	r := newRng(seed)
	var b strings.Builder
	fn := 0
	for b.Len() < n {
		fn++
		fmt.Fprintf(&b, "static %s do_%s_%d(%s *%s, %s %s)\n{\n",
			r.pick(cTypes), r.pick(cIdents), fn, r.pick(cTypes), r.pick(cIdents),
			r.pick(cTypes), r.pick(cIdents))
		stmts := 4 + r.intn(10)
		for s := 0; s < stmts; s++ {
			switch r.intn(5) {
			case 0:
				fmt.Fprintf(&b, "\tif (%s->%s != 0 && %s < %d) {\n\t\t%s = %s + %d;\n\t}\n",
					r.pick(cIdents), r.pick(cIdents), r.pick(cIdents), r.intn(256),
					r.pick(cIdents), r.pick(cIdents), r.intn(16))
			case 1:
				fmt.Fprintf(&b, "\tfor (%s = 0; %s < %s; %s++)\n\t\t%s[%s] = %s;\n",
					r.pick(cIdents), r.pick(cIdents), r.pick(cIdents), r.pick(cIdents),
					r.pick(cIdents), r.pick(cIdents), r.pick(cIdents))
			case 2:
				fmt.Fprintf(&b, "\twhile (*%s != '\\0')\n\t\t%s++;\n", r.pick(cIdents), r.pick(cIdents))
			case 3:
				fmt.Fprintf(&b, "\tswitch (%s) {\n\tcase %d:\n\t\treturn %s;\n\tdefault:\n\t\tbreak;\n\t}\n",
					r.pick(cIdents), r.intn(32), r.pick(cIdents))
			default:
				fmt.Fprintf(&b, "\t%s = (%s << %d) | (%s & 0x%x);\n",
					r.pick(cIdents), r.pick(cIdents), 1+r.intn(7), r.pick(cIdents), r.intn(4096))
			}
		}
		b.WriteString("\treturn 0;\n}\n\n")
	}
	return []byte(b.String()[:n])
}

var fIdents = []string{"I", "J", "K", "N", "M", "X", "Y", "Z", "A", "B", "C", "DX", "DY", "SUM", "TMP", "EPS"}

// fortranSourceText synthesizes scientific FORTRAN source — the
// character class of the paper's "spicef" dataset.
func fortranSourceText(n int, seed uint64) []byte {
	r := newRng(seed)
	var b strings.Builder
	sub := 0
	for b.Len() < n {
		sub++
		fmt.Fprintf(&b, "      SUBROUTINE KERN%d(%s, %s, %s)\n", sub, r.pick(fIdents), r.pick(fIdents), r.pick(fIdents))
		fmt.Fprintf(&b, "      DIMENSION %s(%d), %s(%d)\n", r.pick(fIdents), 100+r.intn(400), r.pick(fIdents), 100+r.intn(400))
		loops := 2 + r.intn(4)
		for l := 0; l < loops; l++ {
			lbl := 10 * (l + 1)
			fmt.Fprintf(&b, "      DO %d %s = 1, %s\n", lbl, r.pick(fIdents), r.pick(fIdents))
			fmt.Fprintf(&b, "         %s(%s) = %s(%s) * %d.%dE%d + %s\n",
				r.pick(fIdents), r.pick(fIdents), r.pick(fIdents), r.pick(fIdents),
				r.intn(10), r.intn(10), r.intn(6), r.pick(fIdents))
			fmt.Fprintf(&b, "%4d  CONTINUE\n", lbl)
		}
		b.WriteString("      RETURN\n      END\n\n")
	}
	return []byte(b.String()[:n])
}

var words = []string{
	"the", "of", "and", "a", "to", "in", "is", "that", "it", "for",
	"branch", "prediction", "compiler", "instruction", "program", "run",
	"dataset", "speculative", "execution", "parallel", "machine", "code",
	"loop", "control", "flow", "static", "dynamic", "profile", "feedback",
	"schedule", "trace", "register", "memory", "cache", "pipeline",
}

// englishText synthesizes prose of roughly n bytes — the class of the
// paper's "long" reference dataset.
func englishText(n int, seed uint64) []byte {
	r := newRng(seed)
	var b strings.Builder
	col := 0
	for b.Len() < n {
		w := r.pick(words)
		if col == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		b.WriteString(w)
		col += len(w) + 1
		if r.intn(12) == 0 {
			b.WriteString(".")
		}
		if col > 60 {
			b.WriteString("\n")
			col = 0
		} else {
			b.WriteString(" ")
		}
	}
	return []byte(b.String()[:n])
}

// binaryImage synthesizes compiled-image-like bytes: mostly structured
// records with repeated opcode-like patterns plus stretches of
// near-random data — the class of the paper's "cmprss"/"spice"
// compiled-image datasets.
func binaryImage(n int, seed uint64) []byte {
	r := newRng(seed)
	out := make([]byte, 0, n)
	opcodes := make([]byte, 24)
	for i := range opcodes {
		opcodes[i] = byte(r.intn(256))
	}
	for len(out) < n {
		switch r.intn(4) {
		case 0: // instruction-like records: opcode, reg, reg, imm16
			for k := 0; k < 32 && len(out) < n; k++ {
				out = append(out, opcodes[r.intn(len(opcodes))], byte(r.intn(32)),
					byte(r.intn(32)), byte(r.intn(256)))
			}
		case 1: // zero padding (bss-like)
			for k := 0; k < 24+r.intn(64) && len(out) < n; k++ {
				out = append(out, 0)
			}
		case 2: // string table fragment
			for k := 0; k < 8 && len(out) < n; k++ {
				w := words[r.intn(len(words))]
				out = append(out, []byte(w)...)
				out = append(out, 0)
			}
		default: // high-entropy section
			for k := 0; k < 48+r.intn(64) && len(out) < n; k++ {
				out = append(out, byte(r.next()))
			}
		}
	}
	return out[:n]
}

// floatColumns synthesizes spiff-style files of floating point
// numbers, nLines lines of nCols columns. mutate flips a few values
// to create the differences spiff reports.
func floatColumns(nLines, nCols int, seed uint64, mutations int) []byte {
	r := newRng(seed)
	var b strings.Builder
	vals := make([][]string, nLines)
	for i := 0; i < nLines; i++ {
		row := make([]string, nCols)
		for j := 0; j < nCols; j++ {
			row[j] = fmt.Sprintf("%d.%04d", r.intn(1000), r.intn(10000))
		}
		vals[i] = row
	}
	mr := newRng(seed * 31)
	for m := 0; m < mutations; m++ {
		i, j := mr.intn(nLines), mr.intn(nCols)
		vals[i][j] = fmt.Sprintf("%d.%04d", mr.intn(1000), mr.intn(10000))
	}
	for i := range vals {
		b.WriteString(strings.Join(vals[i], "  "))
		b.WriteString("\n")
	}
	return []byte(b.String())
}

// dirListing synthesizes ls-style directory listings with nLines
// entries; changeTail replaces the last few lines (the paper's case3).
func dirListing(nLines int, seed uint64, changeTail int) []byte {
	var b strings.Builder
	for i := 0; i < nLines; i++ {
		s := seed
		if i >= nLines-changeTail {
			s = seed * 7
		}
		lr := newRng(s + uint64(i))
		fmt.Fprintf(&b, "-rw-r--r--  1 %-8s %-8s %7d Jul %2d %02d:%02d %s_%d.%s\n",
			lr.pick([]string{"jfisher", "freuden", "root", "siritzky"}),
			lr.pick([]string{"staff", "wheel", "hpl"}),
			lr.intn(900000), 1+lr.intn(28), lr.intn(24), lr.intn(60),
			lr.pick([]string{"trace", "probe", "sched", "bench", "notes"}), i,
			lr.pick([]string{"c", "f", "o", "txt"}))
	}
	return []byte(b.String())
}

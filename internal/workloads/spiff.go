package workloads

// spiff: the file comparison tool included in SPEC. The analogue
// hashes the lines of two input files (separated by a 0x01 byte) and
// computes a longest-common-subsequence alignment over the line
// hashes, reporting common/deleted/added line counts — the same
// algorithmic core (line-oriented LCS diff) with the same data-driven
// control: per-character line scanning and DP table comparisons.
const spiffMF = `
const MAXLINES = 400;

var h1[MAXLINES] int;
var h2[MAXLINES] int;
var dp[160801] int; // (MAXLINES+1)^2

// readlines reads lines until the stop byte (or end of input),
// recording a hash per line into the array at base. Returns the line
// count.
func readlines(base int, stop int) int {
	var n int = 0;
	var h int = 5381;
	var sawany int = 0;
	var c int = getc();
	while (c != -1 && c != stop) {
		if (c == '\n') {
			if (n < MAXLINES) {
				poke(base + n, h);
				n = n + 1;
			}
			h = 5381;
			sawany = 0;
		} else {
			h = (h * 33 + c) & 0xffffffff;
			sawany = 1;
		}
		c = getc();
	}
	if (sawany != 0 && n < MAXLINES) {
		poke(base + n, h);
		n = n + 1;
	}
	return n;
}

func main() int {
	var n int = readlines(&h1, 1);
	var m int = readlines(&h2, 1);
	var w int = m + 1;

	// LCS dynamic program over line hashes.
	var i int;
	var j int;
	for (i = 0; i <= m; i = i + 1) { dp[i] = 0; }
	for (i = 1; i <= n; i = i + 1) {
		dp[i * w] = 0;
		for (j = 1; j <= m; j = j + 1) {
			if (h1[i - 1] == h2[j - 1]) {
				dp[i * w + j] = dp[(i - 1) * w + (j - 1)] + 1;
			} else {
				dp[i * w + j] = imax(dp[(i - 1) * w + j], dp[i * w + (j - 1)]);
			}
		}
	}

	// Walk the alignment back, counting edits.
	var common int = 0;
	var deleted int = 0;
	var added int = 0;
	i = n;
	j = m;
	while (i > 0 && j > 0) {
		if (h1[i - 1] == h2[j - 1]) {
			common = common + 1;
			i = i - 1;
			j = j - 1;
		} else if (dp[(i - 1) * w + j] >= dp[i * w + (j - 1)]) {
			deleted = deleted + 1;
			i = i - 1;
		} else {
			added = added + 1;
			j = j - 1;
		}
	}
	deleted = deleted + i;
	added = added + j;

	puts("common ");  putiln(common);
	puts("deleted "); putiln(deleted);
	puts("added ");   putiln(added);
	return deleted + added;
}
`

func spiffInput(f1, f2 []byte) []byte {
	out := make([]byte, 0, len(f1)+len(f2)+1)
	out = append(out, f1...)
	out = append(out, 1)
	out = append(out, f2...)
	return out
}

func init() {
	register(&Workload{
		Name: "spiff", Lang: C,
		Desc:   "file comparison tool (line-oriented LCS diff)",
		Source: withPrelude(spiffMF),
		Datasets: []Dataset{
			{Name: "case1", Desc: "float files, a few scattered differences", Gen: func() []byte {
				return spiffInput(floatColumns(220, 5, 21, 0), floatColumns(220, 5, 21, 9))
			}},
			{Name: "case2", Desc: "float files, many differences", Gen: func() []byte {
				return spiffInput(floatColumns(250, 5, 22, 0), floatColumns(250, 5, 22, 70))
			}},
			{Name: "case3", Desc: "directory listings, last lines differ", Gen: func() []byte {
				return spiffInput(dirListing(28, 23, 0), dirListing(28, 23, 3))
			}},
		},
	})
}

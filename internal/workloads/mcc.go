package workloads

import (
	"fmt"
	"strings"
)

// mcc: a compiler written in MF, standing in for both gcc (run over
// compiler-module-sized inputs) and mfcom (run over C-flavoured and
// FORTRAN-flavoured source). It compiles the TL toy language —
// let/print statements over +,-,*,/ expressions with parentheses,
// integer literals and variables — into stack-machine assembly text.
// The interesting behaviour for branch prediction is the compiler's
// own: character-class scanning, keyword matching, linear symbol
// table probes, and recursive-descent parsing, all data-dependent
// control of exactly the kind the paper's sceptics expected to be
// unpredictable.
const mccMF = `
const MAXSYMS = 512;
const NAMEBUF = 8192;

// token kinds
const TEOF = 0;
const TNUM = 1;
const TIDENT = 2;
const TLET = 3;
const TPRINT = 4;
const TPLUS = 5;
const TMINUS = 6;
const TSTAR = 7;
const TSLASH = 8;
const TLPAR = 9;
const TRPAR = 10;
const TEQ = 11;
const TSEMI = 12;
const TBAD = 13;

var ungot[1] int = { -2 };
var tok[1] int;        // current token kind
var tokval[1] int;     // literal value
var tokname[64] int;   // identifier characters
var toklen[1] int;

var symoff[MAXSYMS] int;  // offset of each symbol's name
var symlen[MAXSYMS] int;
var nsyms[1] int;
var names[NAMEBUF] int;
var nameptr[1] int;
var errs[1] int;
var emitted[1] int;

func nextc() int {
	if (ungot[0] != -2) {
		var c int = ungot[0];
		ungot[0] = -2;
		return c;
	}
	return getc();
}

func ungetc2(c int) {
	ungot[0] = c;
}

func isalpha(c int) int {
	if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
		return 1;
	}
	return 0;
}

func isdigit(c int) int {
	if (c >= '0' && c <= '9') {
		return 1;
	}
	return 0;
}

// scan advances to the next token.
func scan() {
	var c int = nextc();
	while (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
		c = nextc();
	}
	if (c == '#') {
		// comment to end of line
		while (c != -1 && c != '\n') {
			c = nextc();
		}
		scan();
		return;
	}
	if (c == -1) {
		tok[0] = TEOF;
		return;
	}
	if (isdigit(c) == 1) {
		var n int = 0;
		while (isdigit(c) == 1) {
			n = n * 10 + (c - '0');
			c = nextc();
		}
		ungetc2(c);
		tok[0] = TNUM;
		tokval[0] = n;
		return;
	}
	if (isalpha(c) == 1) {
		var l int = 0;
		while (isalpha(c) == 1 || isdigit(c) == 1) {
			if (l < 63) {
				tokname[l] = c;
				l = l + 1;
			}
			c = nextc();
		}
		ungetc2(c);
		toklen[0] = l;
		// keyword check
		if (l == 3 && tokname[0] == 'l' && tokname[1] == 'e' && tokname[2] == 't') {
			tok[0] = TLET;
			return;
		}
		if (l == 5 && tokname[0] == 'p' && tokname[1] == 'r' && tokname[2] == 'i' && tokname[3] == 'n' && tokname[4] == 't') {
			tok[0] = TPRINT;
			return;
		}
		tok[0] = TIDENT;
		return;
	}
	switch (c) {
	case '+': tok[0] = TPLUS;
	case '-': tok[0] = TMINUS;
	case '*': tok[0] = TSTAR;
	case '/': tok[0] = TSLASH;
	case '(': tok[0] = TLPAR;
	case ')': tok[0] = TRPAR;
	case '=': tok[0] = TEQ;
	case ';': tok[0] = TSEMI;
	default:
		tok[0] = TBAD;
		errs[0] = errs[0] + 1;
	}
}

// lookup interns the current identifier, returning its slot.
func lookup() int {
	var i int;
	for (i = 0; i < nsyms[0]; i = i + 1) {
		if (symlen[i] == toklen[0]) {
			var j int = 0;
			var same int = 1;
			while (j < toklen[0] && same == 1) {
				if (names[symoff[i] + j] != tokname[j]) {
					same = 0;
				}
				j = j + 1;
			}
			if (same == 1) {
				return i;
			}
		}
	}
	var s int = nsyms[0];
	if (s >= MAXSYMS) {
		errs[0] = errs[0] + 1;
		return 0;
	}
	symoff[s] = nameptr[0];
	symlen[s] = toklen[0];
	var k int;
	for (k = 0; k < toklen[0]; k = k + 1) {
		names[nameptr[0]] = tokname[k];
		nameptr[0] = nameptr[0] + 1;
	}
	nsyms[0] = nsyms[0] + 1;
	return s;
}

func emitop(s int) {
	puts(s);
	putc('\n');
	emitted[0] = emitted[0] + 1;
}

func emitarg(s int, n int) {
	puts(s);
	putc(' ');
	puti(n);
	putc('\n');
	emitted[0] = emitted[0] + 1;
}

// expr := term (('+'|'-') term)*
func expr() {
	term();
	while (tok[0] == TPLUS || tok[0] == TMINUS) {
		var op int = tok[0];
		scan();
		term();
		if (op == TPLUS) {
			emitop("ADD");
		} else {
			emitop("SUB");
		}
	}
}

// term := factor (('*'|'/') factor)*
func term() {
	factor();
	while (tok[0] == TSTAR || tok[0] == TSLASH) {
		var op int = tok[0];
		scan();
		factor();
		if (op == TSTAR) {
			emitop("MUL");
		} else {
			emitop("DIV");
		}
	}
}

// factor := NUM | IDENT | '(' expr ')' | '-' factor
func factor() {
	if (tok[0] == TNUM) {
		emitarg("PUSH", tokval[0]);
		scan();
		return;
	}
	if (tok[0] == TIDENT) {
		emitarg("LOAD", lookup());
		scan();
		return;
	}
	if (tok[0] == TLPAR) {
		scan();
		expr();
		if (tok[0] == TRPAR) {
			scan();
		} else {
			errs[0] = errs[0] + 1;
		}
		return;
	}
	if (tok[0] == TMINUS) {
		scan();
		factor();
		emitop("NEG");
		return;
	}
	errs[0] = errs[0] + 1;
	scan();
}

func stmt() {
	if (tok[0] == TLET) {
		scan();
		var slot int = 0;
		if (tok[0] == TIDENT) {
			slot = lookup();
			scan();
		} else {
			errs[0] = errs[0] + 1;
		}
		if (tok[0] == TEQ) {
			scan();
		} else {
			errs[0] = errs[0] + 1;
		}
		expr();
		emitarg("STORE", slot);
	} else if (tok[0] == TPRINT) {
		scan();
		expr();
		emitop("PRINT");
	} else {
		errs[0] = errs[0] + 1;
		scan();
	}
	if (tok[0] == TSEMI) {
		scan();
	} else {
		errs[0] = errs[0] + 1;
	}
}

func main() int {
	scan();
	while (tok[0] != TEOF) {
		stmt();
	}
	emitop("HALT");
	puts("; syms ");
	puti(nsyms[0]);
	puts(" errs ");
	puti(errs[0]);
	putc('\n');
	return emitted[0];
}
`

// tlSource synthesizes TL source. identRatio (0-100) controls how
// often factors are identifiers vs literals; depth controls expression
// nesting; vars is the variable pool size.
func tlSource(n int, seed uint64, identRatio, depth, vars int, comments bool) []byte {
	r := newRng(seed)
	pool := make([]string, vars)
	for i := range pool {
		pool[i] = fmt.Sprintf("%s%d", []string{"reg", "tmp", "acc", "val", "idx", "ptr"}[r.intn(6)], i)
	}
	var b strings.Builder
	var genExpr func(d int)
	genExpr = func(d int) {
		if d <= 0 || r.intn(100) < 35 {
			if r.intn(100) < identRatio {
				b.WriteString(pool[r.intn(vars)])
			} else {
				fmt.Fprintf(&b, "%d", r.intn(10000))
			}
			return
		}
		b.WriteString("(")
		genExpr(d - 1)
		b.WriteString([]string{" + ", " - ", " * ", " / "}[r.intn(4)])
		genExpr(d - 1)
		b.WriteString(")")
	}
	defined := 0
	// Stop at a statement boundary once the size target is met — a
	// byte-exact cut would truncate mid-token and make the compiled
	// module end in a parse error.
	for b.Len() < n {
		if comments && r.intn(8) == 0 {
			fmt.Fprintf(&b, "# %s pass over %s\n", pool[r.intn(vars)], pool[r.intn(vars)])
		}
		if defined == 0 || r.intn(100) < 70 {
			fmt.Fprintf(&b, "let %s = ", pool[r.intn(vars)])
			genExpr(depth)
			b.WriteString(";\n")
			defined++
		} else {
			b.WriteString("print ")
			genExpr(depth)
			b.WriteString(";\n")
		}
	}
	return []byte(b.String())
}

func init() {
	src := withPrelude(mccMF)
	register(&Workload{
		Name: "gcc", Lang: C,
		Desc:   "compiler compiling compiler-module-sized inputs (mcc over 6 TL modules)",
		Source: src,
		Datasets: []Dataset{
			{Name: "insn", Desc: "dense expressions, deep nesting", Gen: func() []byte { return tlSource(26000, 31, 70, 5, 40, true) }},
			{Name: "expr", Desc: "literal-heavy arithmetic", Gen: func() []byte { return tlSource(24000, 32, 25, 4, 12, false) }},
			{Name: "stmt", Desc: "many short statements", Gen: func() []byte { return tlSource(22000, 33, 55, 2, 60, true) }},
			{Name: "flow", Desc: "medium nesting, few variables", Gen: func() []byte { return tlSource(20000, 34, 60, 3, 6, false) }},
			{Name: "jump", Desc: "shallow, comment-heavy", Gen: func() []byte { return tlSource(18000, 35, 45, 2, 25, true) }},
			{Name: "emit2", Desc: "deep nesting, large symbol pool", Gen: func() []byte { return tlSource(24000, 36, 65, 6, 120, false) }},
		},
	})
	register(&Workload{
		Name: "mfcom", Lang: C,
		Desc:   "the compiler over its two profiling inputs (C-metric and FORTRAN-metric source)",
		Source: src,
		Datasets: []Dataset{
			{Name: "c_metric", Desc: "systems-C flavoured TL source", Gen: func() []byte { return tlSource(30000, 41, 75, 4, 80, true) }},
			{Name: "fortran_metric", Desc: "scientific flavoured TL source", Gen: func() []byte { return tlSource(30000, 42, 30, 3, 10, false) }},
		},
	})
}

package workloads

import (
	"strconv"
	"strings"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
)

// outputOf compiles and runs a workload dataset and returns its text
// output.
func outputOf(t *testing.T, wname, dsname string) string {
	t.Helper()
	w, err := ByName(wname)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(wname, w.Source, mfc.Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", wname, err)
	}
	for _, ds := range w.Datasets {
		if ds.Name == dsname {
			res, err := vm.Run(prog, ds.Gen(), nil)
			if err != nil {
				t.Fatalf("run %s/%s: %v", wname, dsname, err)
			}
			return string(res.Output)
		}
	}
	t.Fatalf("no dataset %s", dsname)
	return ""
}

// field extracts the integer after a labelled token ("label N").
func field(t *testing.T, out, label string) int {
	t.Helper()
	idx := strings.Index(out, label+" ")
	if idx < 0 {
		t.Fatalf("output missing %q: %q", label, out)
	}
	rest := out[idx+len(label)+1:]
	end := strings.IndexAny(rest, "\n ")
	if end < 0 {
		end = len(rest)
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest[:end]))
	if err != nil {
		t.Fatalf("bad %s field in %q: %v", label, out, err)
	}
	return n
}

// TestSpiffCountsMatchGoDiff cross-checks the MF LCS diff against a
// straightforward Go implementation on the same inputs.
func TestSpiffCountsMatchGoDiff(t *testing.T) {
	w, err := ByName("spiff")
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range w.Datasets {
		input := ds.Gen()
		parts := strings.SplitN(string(input), "\x01", 2)
		if len(parts) != 2 {
			t.Fatalf("%s: malformed input", ds.Name)
		}
		a := nonEmptyLines(parts[0])
		b := nonEmptyLines(parts[1])
		common := lcsLen(a, b)
		wantDeleted := len(a) - common
		wantAdded := len(b) - common

		out := outputOf(t, "spiff", ds.Name)
		if got := field(t, out, "common"); got != common {
			t.Errorf("%s: common = %d, want %d", ds.Name, got, common)
		}
		if got := field(t, out, "deleted"); got != wantDeleted {
			t.Errorf("%s: deleted = %d, want %d", ds.Name, got, wantDeleted)
		}
		if got := field(t, out, "added"); got != wantAdded {
			t.Errorf("%s: added = %d, want %d", ds.Name, got, wantAdded)
		}
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func lcsLen(a, b []string) int {
	dp := make([][]int, len(a)+1)
	for i := range dp {
		dp[i] = make([]int, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				dp[i][j] = dp[i-1][j-1] + 1
			} else if dp[i-1][j] > dp[i][j-1] {
				dp[i][j] = dp[i-1][j]
			} else {
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	return dp[len(a)][len(b)]
}

// TestEqntottRowCounts checks the truth-table sizes: 2^(2k) rows for
// the k-bit adders, 2^10 for the priority circuit.
func TestEqntottRowCounts(t *testing.T) {
	for _, c := range []struct {
		ds   string
		rows int
	}{
		{"add4", 1 << 8}, {"add5", 1 << 10}, {"add6", 1 << 12}, {"intpri", 1 << 10},
	} {
		out := outputOf(t, "eqntott", c.ds)
		if got := field(t, out, "rows"); got != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.ds, got, c.rows)
		}
	}
}

// TestEqntottAdderSemantics spot-checks the generated adder equations
// against real addition by evaluating the RPN in Go.
func TestEqntottAdderSemantics(t *testing.T) {
	k := 4
	eqs := strings.Split(strings.TrimSpace(string(adderEquations(k))), "\n")[1:]
	for a := 0; a < 1<<k; a++ {
		for b := 0; b < 1<<k; b++ {
			assign := a | b<<k
			outs := make([]int, 0, len(eqs))
			for _, eq := range eqs {
				outs = append(outs, evalRPN(t, eq, assign, outs))
			}
			// outs alternate s_i, c_i; reconstruct the sum.
			sum := 0
			for i := 0; i < k; i++ {
				sum |= outs[2*i] << i
			}
			carry := outs[2*k-1]
			want := a + b
			if sum|carry<<k != want {
				t.Fatalf("adder(%d,%d): got %d carry %d, want %d", a, b, sum, carry, want)
			}
		}
	}
}

func evalRPN(t *testing.T, eq string, assign int, outs []int) int {
	t.Helper()
	var stack []int
	push := func(v int) { stack = append(stack, v) }
	pop := func() int {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	for _, tok := range strings.Fields(strings.TrimSuffix(strings.TrimSpace(eq), ";")) {
		switch {
		case strings.HasPrefix(tok, "v"):
			bit, err := strconv.Atoi(tok[1:])
			if err != nil {
				t.Fatalf("bad token %q", tok)
			}
			push(assign >> bit & 1)
		case strings.HasPrefix(tok, "o"):
			idx, err := strconv.Atoi(tok[1:])
			if err != nil {
				t.Fatalf("bad token %q", tok)
			}
			push(outs[idx])
		case tok == "&":
			b := pop()
			push(pop() & b)
		case tok == "|":
			b := pop()
			push(pop() | b)
		case tok == "!":
			push(1 - pop())
		default:
			t.Fatalf("unknown token %q", tok)
		}
	}
	if len(stack) != 1 {
		t.Fatalf("stack depth %d after %q", len(stack), eq)
	}
	return stack[0]
}

// TestEspressoMinimizes checks the minimizer reduces every dataset's
// cover and reports zero-size never.
func TestEspressoMinimizes(t *testing.T) {
	w, err := ByName("espresso")
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range w.Datasets {
		out := outputOf(t, "espresso", ds.Name)
		in := field(t, out, "in")
		cubes := field(t, out, "cubes")
		if cubes <= 0 || cubes >= in {
			t.Errorf("%s: %d cubes from %d inputs — no minimization", ds.Name, cubes, in)
		}
		if float64(cubes) > 0.8*float64(in) {
			t.Errorf("%s: only reduced %d -> %d; generator should cluster more", ds.Name, in, cubes)
		}
	}
}

// TestMccCompilesCleanly checks the MF-hosted compiler accepts every
// generated module without diagnostics and emits code.
func TestMccCompilesCleanly(t *testing.T) {
	for _, wname := range []string{"gcc", "mfcom"} {
		w, err := ByName(wname)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range w.Datasets {
			out := outputOf(t, wname, ds.Name)
			if got := field(t, out, "errs"); got != 0 {
				t.Errorf("%s/%s: %d compile errors", wname, ds.Name, got)
			}
			if got := field(t, out, "syms"); got <= 0 {
				t.Errorf("%s/%s: no symbols interned", wname, ds.Name)
			}
			if !strings.Contains(out, "PUSH") && !strings.Contains(out, "LOAD") {
				t.Errorf("%s/%s: no code emitted", wname, ds.Name)
			}
		}
	}
}

// TestSpiceConverges checks every netlist reaches a converged
// operating point (iteration counts well under the Newton cap).
func TestSpiceConverges(t *testing.T) {
	w, err := ByName("spice2g6")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range w.Datasets {
		res, err := vm.Run(prog, ds.Gen(), nil)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		out := string(res.Output)
		if strings.Contains(out, "nan") || strings.Contains(out, "huge") {
			t.Errorf("%s: non-finite node voltages: %q", ds.Name, out)
		}
		iters := field(t, out, "iters")
		if iters <= 0 {
			t.Errorf("%s: no Newton iterations", ds.Name)
		}
	}
}

// TestWorkloadOutputsStable pins a few golden outputs so accidental
// workload changes (which would silently shift every experiment) are
// caught.
func TestWorkloadOutputsStable(t *testing.T) {
	for _, c := range []struct{ w, ds, want string }{
		{"li", "8queens", "92\n"},
		{"li", "sievel", "55\n"},
		{"eqntott", "add4", "rows 256\n"},
	} {
		out := outputOf(t, c.w, c.ds)
		if !strings.Contains(out, c.want) {
			t.Errorf("%s/%s: output %q missing %q", c.w, c.ds, out, c.want)
		}
	}
}

// TestDatasetSizesSpread verifies the deliberate run-length spread:
// spice2g6's biggest dataset must dwarf its smallest by >1000x, the
// paper's circuit2-vs-greybig situation.
func TestDatasetSizesSpread(t *testing.T) {
	w, err := ByName("spice2g6")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var min, max uint64
	var minName, maxName string
	for _, ds := range w.Datasets {
		res, err := vm.Run(prog, ds.Gen(), nil)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if min == 0 || res.Instrs < min {
			min, minName = res.Instrs, ds.Name
		}
		if res.Instrs > max {
			max, maxName = res.Instrs, ds.Name
		}
	}
	if max < 1000*min {
		t.Errorf("spice dataset spread %s=%d vs %s=%d is below 1000x", minName, min, maxName, max)
	}
	if minName != "circuit2" {
		t.Errorf("smallest dataset is %s, want circuit2", minName)
	}
}

// TestSiteIdentitiesUnique: every workload's (label, line, col)
// triples must be unique so feedback directives re-attach
// unambiguously. This is the invariant the paper protected by
// disabling dead code elimination.
func TestSiteIdentitiesUnique(t *testing.T) {
	for _, w := range All() {
		prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		type key struct {
			label     string
			line, col int
		}
		seen := make(map[key]int)
		for _, s := range prog.Sites {
			k := key{s.Label, s.Line, s.Col}
			if prev, dup := seen[k]; dup {
				t.Errorf("%s: sites %d and %d share identity %v", w.Name, prev, s.ID, k)
			}
			seen[k] = s.ID
		}
	}
}

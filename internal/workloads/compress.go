package workloads

// compress / uncompress: LZW file compression, the analogue of the
// SPEC 3.0 compress the paper measured. As in the paper, compression
// and decompression are one program selected by a switch — here the
// first input byte, 'c' or 'd' — so the compress and uncompress
// workloads share a compiled image, which is what let the paper
// observe that one mode's profile is useless for predicting the other.
const compressMF = `
// LZW with 12-bit codes emitted as little-endian byte pairs.
const HASHSIZE = 8192;
const MAXCODES = 4096;

var hkey[HASHSIZE] int;   // key+1; 0 = empty slot
var hval[HASHSIZE] int;
var prefix[MAXCODES] int; // decompressor tables
var suffix[MAXCODES] int;
var stack[MAXCODES] int;

func hfind(key int) int {
	var h int = (key * 2654435761) & (HASHSIZE - 1);
	while (hkey[h] != 0) {
		if (hkey[h] == key + 1) {
			return hval[h];
		}
		h = (h + 1) & (HASHSIZE - 1);
	}
	return -1;
}

func hinsert(key int, code int) {
	var h int = (key * 2654435761) & (HASHSIZE - 1);
	while (hkey[h] != 0) {
		h = (h + 1) & (HASHSIZE - 1);
	}
	hkey[h] = key + 1;
	hval[h] = code;
}

func emit(code int) {
	putc(code & 255);
	putc(code >> 8);
}

func docompress() int {
	var w int = getc();
	if (w == -1) {
		return 0;
	}
	var next int = 256;
	var c int = getc();
	var n int = 0;
	while (c != -1) {
		var key int = w * 256 + c;
		var f int = hfind(key);
		if (f >= 0) {
			w = f;
		} else {
			emit(w);
			n = n + 1;
			if (next < MAXCODES) {
				hinsert(key, next);
				next = next + 1;
			}
			w = c;
		}
		c = getc();
	}
	emit(w);
	return n + 1;
}

// getcode reads one little-endian code pair; -1 at end of input.
func getcode() int {
	var lo int = getc();
	if (lo == -1) {
		return -1;
	}
	var hi int = getc();
	if (hi == -1) {
		return -1;
	}
	return lo | (hi << 8);
}

// expand writes the string for code, returning its first byte.
func expand(code int) int {
	var sp int = 0;
	while (code >= 256) {
		stack[sp] = suffix[code];
		sp = sp + 1;
		code = prefix[code];
	}
	var first int = code;
	putc(code);
	while (sp > 0) {
		sp = sp - 1;
		putc(stack[sp]);
	}
	return first;
}

// firstbyte returns the first byte of code's string without output.
func firstbyte(code int) int {
	while (code >= 256) {
		code = prefix[code];
	}
	return code;
}

func douncompress() int {
	var prev int = getcode();
	if (prev == -1) {
		return 0;
	}
	var next int = 256;
	var n int = 1;
	expand(prev);
	var code int = getcode();
	while (code != -1) {
		var first int = 0;
		if (code < next) {
			first = expand(code);
		} else {
			// KwKwK: the code being defined right now.
			first = expand(prev);
			putc(first);
		}
		if (next < MAXCODES) {
			prefix[next] = prev;
			suffix[next] = first;
			next = next + 1;
		}
		prev = code;
		n = n + 1;
		code = getcode();
	}
	return n;
}

func main() int {
	var mode int = getc();
	if (mode == 'c') {
		return docompress();
	}
	if (mode == 'd') {
		return douncompress();
	}
	return -1;
}
`

// compressDatasets mirrors the paper's five: C source, a compiled
// image, the long reference text, FORTRAN source, and another
// compiled image.
func compressRawInputs() []Dataset {
	return []Dataset{
		{Name: "cmprssc", Desc: "C source text", Gen: func() []byte { return cSourceText(40000, 11) }},
		{Name: "cmprss", Desc: "compiled image of compress", Gen: func() []byte { return binaryImage(40000, 12) }},
		{Name: "long", Desc: "long English reference text", Gen: func() []byte { return englishText(90000, 13) }},
		{Name: "spicef", Desc: "FORTRAN source for spice", Gen: func() []byte { return fortranSourceText(40000, 14) }},
		{Name: "spice", Desc: "compiled image of spice", Gen: func() []byte { return binaryImage(60000, 15) }},
	}
}

func init() {
	raw := compressRawInputs()
	cds := make([]Dataset, len(raw))
	uds := make([]Dataset, len(raw))
	for i, d := range raw {
		gen := d.Gen
		cds[i] = Dataset{Name: d.Name, Desc: d.Desc, Gen: func() []byte {
			return append([]byte{'c'}, gen()...)
		}}
		uds[i] = Dataset{Name: d.Name, Desc: d.Desc + " (compressed)", Gen: func() []byte {
			return append([]byte{'d'}, LZWCompress(gen())...)
		}}
	}
	src := withPrelude(compressMF)
	register(&Workload{
		Name: "compress", Lang: C,
		Desc:     "UNIX file compression (LZW), SPEC 3.0 analogue",
		Source:   src,
		Datasets: cds,
	})
	register(&Workload{
		Name: "uncompress", Lang: C,
		Desc:     "compress with the decompression switch set",
		Source:   src,
		Datasets: uds,
	})
}

package workloads

// tomcatv: mesh generation with a Thompson-solver flavour — an
// iterative relaxation over two coordinate grids with residual
// maximum tracking, the vectorizable counted-loop structure of the
// SPEC program. The constant-guarded MESHCHK block in the interior
// stencil mirrors the 14% dynamically dead code Table 1 reports for
// tomcatv.
const tomcatvMF = `
const N = 128;
const NITER = 20;
const MESHCHK = 0;

var xg[16384] float;
var yg[16384] float;
var rx[16384] float;
var ry[16384] float;

func initgrid() {
	var i int;
	var j int;
	for (i = 0; i < N; i = i + 1) {
		for (j = 0; j < N; j = j + 1) {
			// stretched initial mesh
			var fi float = float(i) / float(N - 1);
			var fj float = float(j) / float(N - 1);
			xg[i * N + j] = fi * fi * 0.5 + fi * 0.5;
			yg[i * N + j] = fj + fi * fj * (1.0 - fj) * 0.3;
		}
	}
}

func main() int {
	initgrid();
	var it int;
	var i int;
	var j int;
	var rxm float = 0.0;
	var rym float = 0.0;
	for (it = 0; it < NITER; it = it + 1) {
		rxm = 0.0;
		rym = 0.0;
		for (i = 1; i < N - 1; i = i + 1) {
			for (j = 1; j < N - 1; j = j + 1) {
				var c int = i * N + j;
				var ax float = (xg[c - 1] + xg[c + 1] + xg[c - N] + xg[c + N]) * 0.25 - xg[c];
				var ay float = (yg[c - 1] + yg[c + 1] + yg[c - N] + yg[c + N]) * 0.25 - yg[c];
				rx[c] = ax;
				ry[c] = ay;
				if (MESHCHK != 0) {
					if (fabs(ax) > 10.0 || fabs(ay) > 10.0) {
						puts("mesh blowup\n");
					}
				}
				if (MESHCHK == 2) {
					// dead symmetry audit
					if (xg[c] != xg[c] || yg[c] != yg[c]) {
						puts("mesh nan\n");
					}
				}
				if (MESHCHK == 3) {
					// dead residual trace
					putf(ax); putf(ay);
				}
				if (fabs(ax) > rxm) { rxm = fabs(ax); }
				if (fabs(ay) > rym) { rym = fabs(ay); }
			}
		}
		for (i = 1; i < N - 1; i = i + 1) {
			for (j = 1; j < N - 1; j = j + 1) {
				var c int = i * N + j;
				xg[c] = xg[c] + rx[c] * 0.9;
				yg[c] = yg[c] + ry[c] * 0.9;
			}
		}
	}
	puts("rxm ");
	putf(rxm * 100000.0);
	putc('\n');
	puts("rym ");
	putf(rym * 100000.0);
	putc('\n');
	return NITER;
}
`

func init() {
	register(&Workload{
		Name: "tomcatv", Lang: Fortran,
		Desc:   "mesh generation and relaxation solver",
		Source: withPrelude(tomcatvMF),
	})
}

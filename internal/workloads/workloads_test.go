package workloads

import (
	"bytes"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
)

// TestAllWorkloadsRun compiles every workload and runs every dataset,
// checking that each run completes and executes a sane number of
// instructions and branches.
func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, ds := range w.Datasets {
				res, err := vm.Run(prog, ds.Gen(), nil)
				if err != nil {
					t.Fatalf("dataset %s: %v", ds.Name, err)
				}
				if res.Instrs < 1000 {
					t.Errorf("dataset %s: only %d instructions executed; workload too trivial", ds.Name, res.Instrs)
				}
				if res.CondBranches() == 0 {
					t.Errorf("dataset %s: no conditional branches executed", ds.Name)
				}
				t.Logf("dataset %-10s instrs=%10d branches=%9d taken=%.2f",
					ds.Name, res.Instrs, res.CondBranches(),
					float64(res.TakenBranches())/float64(res.CondBranches()))
			}
		})
	}
}

// TestDatasetsDeterministic checks that generators produce identical
// bytes on every call.
func TestDatasetsDeterministic(t *testing.T) {
	for _, w := range All() {
		for _, ds := range w.Datasets {
			a, b := ds.Gen(), ds.Gen()
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: generator is not deterministic", w.Name, ds.Name)
			}
		}
	}
}

// TestMFCompressMatchesGoTwin checks the MF LZW implementation against
// the Go twin byte for byte, both directions.
func TestMFCompressMatchesGoTwin(t *testing.T) {
	w, err := ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile("compress", w.Source, mfc.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inputs := [][]byte{
		[]byte("abababababababababab"),
		[]byte("to be or not to be that is the question"),
		cSourceText(5000, 99),
		binaryImage(5000, 98),
		{0, 0, 0, 0, 1, 1, 1, 1},
	}
	for i, raw := range inputs {
		res, err := vm.Run(prog, append([]byte{'c'}, raw...), nil)
		if err != nil {
			t.Fatalf("input %d compress: %v", i, err)
		}
		want := LZWCompress(raw)
		if !bytes.Equal(res.Output, want) {
			t.Errorf("input %d: MF compression differs from Go twin (%d vs %d bytes)", i, len(res.Output), len(want))
			continue
		}
		res, err = vm.Run(prog, append([]byte{'d'}, want...), nil)
		if err != nil {
			t.Fatalf("input %d uncompress: %v", i, err)
		}
		if !bytes.Equal(res.Output, raw) {
			t.Errorf("input %d: MF decompression did not round-trip (%d vs %d bytes)", i, len(res.Output), len(raw))
		}
		if got := LZWDecompress(want); !bytes.Equal(got, raw) {
			t.Errorf("input %d: Go decompression did not round-trip", i)
		}
	}
}

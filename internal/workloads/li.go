package workloads

// li: a Lisp interpreter in the XLISP mould, written in MF. It has a
// cons heap, an s-expression reader with interned symbols, an
// evaluator with shallow dynamic binding (the period-appropriate
// XLISP strategy: apply saves a symbol's global value, binds the
// argument, and restores on return), special forms (quote, if,
// define, setq, while, begin), and builtins dispatched through a
// function-pointer table — so executing Lisp exercises indirect
// calls, exactly the unavoidable breaks the paper charges against li.
//
// Datasets: 8queens/9queens place queens via recursive bitmask
// search; sieve counts primes with while/setq iteration generated the
// way the paper's sievel dataset was (mechanical, flat code).
const liMF = `
const HEAP = 600000;
const INTBASE = 16777216;  // values >= INTBASE and < SYMBASE are ints
const ZOFF = 4194304;      // int encoding offset (value 0)
const SYMBASE = 134217728; // values >= SYMBASE are symbols
const MAXSYMS = 512;
const NAMEBUF = 4096;
const SAVEMAX = 4096;

var car[HEAP] int;
var cdr[HEAP] int;
var hp[1] int = { 1 };  // cell 0 is reserved so NIL == 0

var symname[MAXSYMS] int; // offset into names
var symlen[MAXSYMS] int;
var symval[MAXSYMS] int;
var symfun[MAXSYMS] int;  // 0 none, >0 lambda pair, <0 builtin -(k+1)
var nsyms[1] int;
var names[NAMEBUF] int;
var nameptr[1] int;

var savesym[SAVEMAX] int; // shallow binding save stack
var saveval[SAVEMAX] int;
var savetop[1] int;

var bfn[24] int;   // builtin function table (function refs)
var errors[1] int;
var ungot[1] int = { -2 };

// special form symbol ids, filled by initsyms
var sQuote[1] int;
var sIf[1] int;
var sDefine[1] int;
var sSetq[1] int;
var sWhile[1] int;
var sBegin[1] int;
var sT[1] int;

func cons(a int, d int) int {
	if (hp[0] >= HEAP) {
		errors[0] = errors[0] + 1;
		return 0;
	}
	var c int = hp[0];
	car[c] = a;
	cdr[c] = d;
	hp[0] = c + 1;
	return c;
}

func mkint(n int) int { return INTBASE + ZOFF + n; }
func intval(x int) int { return x - INTBASE - ZOFF; }
func isint(x int) int { if (x >= INTBASE && x < SYMBASE) { return 1; } return 0; }
func issym(x int) int { if (x >= SYMBASE) { return 1; } return 0; }
func ispair(x int) int { if (x > 0 && x < INTBASE) { return 1; } return 0; }

// intern finds or creates the symbol whose name is in tokname.
var tokname[64] int;
var toklen[1] int;

func intern() int {
	var i int;
	for (i = 0; i < nsyms[0]; i = i + 1) {
		if (symlen[i] == toklen[0]) {
			var j int = 0;
			var same int = 1;
			while (j < toklen[0] && same == 1) {
				if (names[symname[i] + j] != tokname[j]) { same = 0; }
				j = j + 1;
			}
			if (same == 1) { return SYMBASE + i; }
		}
	}
	var s int = nsyms[0];
	if (s >= MAXSYMS) { errors[0] = errors[0] + 1; return SYMBASE; }
	symname[s] = nameptr[0];
	symlen[s] = toklen[0];
	symval[s] = 0;
	symfun[s] = 0;
	var k int;
	for (k = 0; k < toklen[0]; k = k + 1) {
		names[nameptr[0]] = tokname[k];
		nameptr[0] = nameptr[0] + 1;
	}
	nsyms[0] = nsyms[0] + 1;
	return SYMBASE + s;
}

// internstr interns the NUL-terminated name at address p.
func internstr(p int) int {
	var l int = 0;
	var c int = peek(p);
	while (c != 0) {
		tokname[l] = c;
		l = l + 1;
		p = p + 1;
		c = peek(p);
	}
	toklen[0] = l;
	return intern();
}

func nextc() int {
	if (ungot[0] != -2) {
		var c int = ungot[0];
		ungot[0] = -2;
		return c;
	}
	return getc();
}

func pushback(c int) { ungot[0] = c; }

func isdelim(c int) int {
	if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == ')' || c == -1) {
		return 1;
	}
	return 0;
}

// readexpr parses one s-expression; returns -1 at end of input.
func readexpr() int {
	var c int = nextc();
	while (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';') {
		if (c == ';') {
			while (c != -1 && c != '\n') { c = nextc(); }
		}
		c = nextc();
	}
	if (c == -1) { return -1; }
	if (c == '(') { return readlist(); }
	if (c == ')') { errors[0] = errors[0] + 1; return 0; }
	if (c == 39) {
		// quote shorthand
		var q int = readexpr();
		return cons(sQuote[0], cons(q, 0));
	}
	if ((c >= '0' && c <= '9') || c == '-') {
		var neg int = 0;
		if (c == '-') {
			var d int = nextc();
			if (d < '0' || d > '9') {
				// bare minus: a symbol
				pushback(d);
				tokname[0] = '-';
				toklen[0] = 1;
				return intern();
			}
			neg = 1;
			c = d;
		}
		var n int = 0;
		while (c >= '0' && c <= '9') {
			n = n * 10 + (c - '0');
			c = nextc();
		}
		pushback(c);
		if (neg == 1) { n = -n; }
		return mkint(n);
	}
	var l int = 0;
	while (isdelim(c) == 0) {
		if (l < 63) { tokname[l] = c; l = l + 1; }
		c = nextc();
	}
	pushback(c);
	toklen[0] = l;
	return intern();
}

// readlist parses after '(' up to the matching ')'.
func readlist() int {
	var c int = nextc();
	while (c == ' ' || c == '\t' || c == '\n' || c == '\r') { c = nextc(); }
	if (c == ')' || c == -1) { return 0; }
	pushback(c);
	var head int = readexpr();
	return cons(head, readlist());
}

// printval writes a value the way li printed results.
func printval(x int) {
	if (x == 0) { puts("nil"); return; }
	if (isint(x) == 1) { puti(intval(x)); return; }
	if (issym(x) == 1) {
		var s int = x - SYMBASE;
		var k int;
		for (k = 0; k < symlen[s]; k = k + 1) {
			putc(names[symname[s] + k]);
		}
		return;
	}
	putc('(');
	var first int = 1;
	while (ispair(x) == 1) {
		if (first == 0) { putc(' '); }
		first = 0;
		printval(car[x]);
		x = cdr[x];
	}
	if (x != 0) {
		puts(" . ");
		printval(x);
	}
	putc(')');
}

// ---- builtins: each takes the evaluated argument list ----

func arg1(a int) int { if (ispair(a) == 1) { return car[a]; } return 0; }
func arg2(a int) int { if (ispair(a) == 1 && ispair(cdr[a]) == 1) { return car[cdr[a]]; } return 0; }

func bi_add(a int) int {
	var s int = 0;
	while (ispair(a) == 1) {
		s = s + intval(car[a]);
		a = cdr[a];
	}
	return mkint(s);
}

func bi_sub(a int) int {
	if (cdr[a] == 0) { return mkint(-intval(car[a])); }
	return mkint(intval(arg1(a)) - intval(arg2(a)));
}

func bi_mul(a int) int {
	var s int = 1;
	while (ispair(a) == 1) {
		s = s * intval(car[a]);
		a = cdr[a];
	}
	return mkint(s);
}

func bi_div(a int) int {
	var d int = intval(arg2(a));
	if (d == 0) { errors[0] = errors[0] + 1; return mkint(0); }
	return mkint(intval(arg1(a)) / d);
}

func bi_rem(a int) int {
	var d int = intval(arg2(a));
	if (d == 0) { errors[0] = errors[0] + 1; return mkint(0); }
	return mkint(intval(arg1(a)) % d);
}

func bi_lt(a int) int { if (intval(arg1(a)) < intval(arg2(a))) { return sT[0]; } return 0; }
func bi_gt(a int) int { if (intval(arg1(a)) > intval(arg2(a))) { return sT[0]; } return 0; }
func bi_le(a int) int { if (intval(arg1(a)) <= intval(arg2(a))) { return sT[0]; } return 0; }
func bi_eqn(a int) int { if (arg1(a) == arg2(a)) { return sT[0]; } return 0; }
func bi_and(a int) int { return mkint(intval(arg1(a)) & intval(arg2(a))); }
func bi_or(a int) int { return mkint(intval(arg1(a)) | intval(arg2(a))); }
func bi_xor(a int) int { return mkint(intval(arg1(a)) ^ intval(arg2(a))); }
func bi_not(a int) int { return mkint(~intval(arg1(a))); }
func bi_shl(a int) int { return mkint(intval(arg1(a)) << intval(arg2(a))); }
func bi_shr(a int) int { return mkint(intval(arg1(a)) >> intval(arg2(a))); }
func bi_car(a int) int { var x int = arg1(a); if (ispair(x) == 1) { return car[x]; } return 0; }
func bi_cdr(a int) int { var x int = arg1(a); if (ispair(x) == 1) { return cdr[x]; } return 0; }
func bi_cons(a int) int { return cons(arg1(a), arg2(a)); }
func bi_null(a int) int { if (arg1(a) == 0) { return sT[0]; } return 0; }
func bi_print(a int) int {
	printval(arg1(a));
	putc('\n');
	return arg1(a);
}

func defbuiltin(name int, k int, fn int) {
	var s int = internstr(name) - SYMBASE;
	symfun[s] = -(k + 1);
	bfn[k] = fn;
}

func initsyms() {
	sQuote[0] = internstr("quote");
	sIf[0] = internstr("if");
	sDefine[0] = internstr("define");
	sSetq[0] = internstr("setq");
	sWhile[0] = internstr("while");
	sBegin[0] = internstr("begin");
	sT[0] = internstr("t");
	symval[sT[0] - SYMBASE] = sT[0];
	defbuiltin("+", 0, &bi_add);
	defbuiltin("-", 1, &bi_sub);
	defbuiltin("*", 2, &bi_mul);
	defbuiltin("/", 3, &bi_div);
	defbuiltin("%", 4, &bi_rem);
	defbuiltin("<", 5, &bi_lt);
	defbuiltin(">", 6, &bi_gt);
	defbuiltin("<=", 7, &bi_le);
	defbuiltin("=", 8, &bi_eqn);
	defbuiltin("logand", 9, &bi_and);
	defbuiltin("logior", 10, &bi_or);
	defbuiltin("logxor", 11, &bi_xor);
	defbuiltin("lognot", 12, &bi_not);
	defbuiltin("ash", 13, &bi_shl);
	defbuiltin("asr", 14, &bi_shr);
	defbuiltin("car", 15, &bi_car);
	defbuiltin("cdr", 16, &bi_cdr);
	defbuiltin("cons", 17, &bi_cons);
	defbuiltin("null", 18, &bi_null);
	defbuiltin("print", 19, &bi_print);
}

// evlist evaluates each element of a list into a fresh list.
func evlist(a int) int {
	if (ispair(a) == 0) { return 0; }
	var h int = eval(car[a]);
	return cons(h, evlist(cdr[a]));
}

// apply invokes a user lambda pair (params . body) with shallow
// dynamic binding.
func apply(fn int, args int) int {
	var params int = car[fn];
	var body int = cdr[fn];
	var bound int = 0;
	while (ispair(params) == 1) {
		var s int = car[params] - SYMBASE;
		if (savetop[0] >= SAVEMAX) {
			errors[0] = errors[0] + 1;
			return 0;
		}
		savesym[savetop[0]] = s;
		saveval[savetop[0]] = symval[s];
		savetop[0] = savetop[0] + 1;
		if (ispair(args) == 1) {
			symval[s] = car[args];
			args = cdr[args];
		} else {
			symval[s] = 0;
		}
		params = cdr[params];
		bound = bound + 1;
	}
	var r int = 0;
	while (ispair(body) == 1) {
		r = eval(car[body]);
		body = cdr[body];
	}
	while (bound > 0) {
		savetop[0] = savetop[0] - 1;
		symval[savesym[savetop[0]]] = saveval[savetop[0]];
		bound = bound - 1;
	}
	return r;
}

func eval(x int) int {
	if (x == 0 || isint(x) == 1) { return x; }
	if (issym(x) == 1) { return symval[x - SYMBASE]; }
	var head int = car[x];
	if (head == sQuote[0]) { return arg1(cdr[x]); }
	if (head == sIf[0]) {
		var c int = eval(car[cdr[x]]);
		if (c != 0) {
			return eval(car[cdr[cdr[x]]]);
		}
		var e int = cdr[cdr[cdr[x]]];
		if (ispair(e) == 1) { return eval(car[e]); }
		return 0;
	}
	if (head == sDefine[0]) {
		var spec int = car[cdr[x]];
		if (ispair(spec) == 1) {
			// (define (f a b) body...)
			var s int = car[spec] - SYMBASE;
			symfun[s] = cons(cdr[spec], cdr[cdr[x]]);
			return car[spec];
		}
		var s2 int = spec - SYMBASE;
		symval[s2] = eval(car[cdr[cdr[x]]]);
		return spec;
	}
	if (head == sSetq[0]) {
		var s int = car[cdr[x]] - SYMBASE;
		symval[s] = eval(car[cdr[cdr[x]]]);
		return symval[s];
	}
	if (head == sWhile[0]) {
		var cond int = car[cdr[x]];
		var body int = cdr[cdr[x]];
		while (eval(cond) != 0) {
			var b int = body;
			while (ispair(b) == 1) {
				eval(car[b]);
				b = cdr[b];
			}
		}
		return 0;
	}
	if (head == sBegin[0]) {
		var r int = 0;
		var b int = cdr[x];
		while (ispair(b) == 1) {
			r = eval(car[b]);
			b = cdr[b];
		}
		return r;
	}
	// function application
	if (issym(head) == 0) { errors[0] = errors[0] + 1; return 0; }
	var f int = symfun[head - SYMBASE];
	if (f == 0) { errors[0] = errors[0] + 1; return 0; }
	var args int = evlist(cdr[x]);
	if (f < 0) {
		return icall1(bfn[-f - 1], args);
	}
	return apply(f, args);
}

func main() int {
	initsyms();
	var x int = readexpr();
	while (x != -1) {
		eval(x);
		x = readexpr();
	}
	puts("; cells ");
	puti(hp[0]);
	puts(" errs ");
	puti(errors[0]);
	putc('\n');
	return errors[0];
}
`

// queensLisp is the n-queens bitmask search program.
func queensLisp(n int) []byte {
	all := (1 << n) - 1
	return []byte(`
; place n queens with bitmask recursion
(define (solve cols d1 d2)
  (if (= cols ` + itoa(all) + `) 1
      (try (logand (lognot (logior cols (logior d1 d2))) ` + itoa(all) + `) cols d1 d2)))
(define (try poss cols d1 d2)
  (if (= poss 0) 0
      (+ (solve (logior cols (logand poss (- 0 poss)))
                (logand (ash (logior d1 (logand poss (- 0 poss))) 1) ` + itoa(all) + `)
                (asr (logior d2 (logand poss (- 0 poss))) 1))
         (try (logand poss (- poss 1)) cols d1 d2))))
(print (solve 0 0 0))
`)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// sieveLisp is a flat, machine-generated-looking prime counter — the
// analogue of the paper's "output of machine lang to lisp simulator"
// dataset.
func sieveLisp(limit int) []byte {
	return []byte(`
; prime counting by trial division (mechanically generated style)
(setq count 0)
(setq i 2)
(while (< i ` + itoa(limit) + `)
  (begin
    (setq d 2)
    (setq flag 1)
    (while (<= (* d d) i)
      (begin
        (if (= (% i d) 0) (setq flag 0) 0)
        (setq d (+ d 1))))
    (if (= flag 1) (setq count (+ count 1)) 0)
    (setq i (+ i 1))))
(print count)
`)
}

func init() {
	register(&Workload{
		Name: "li", Lang: C,
		Desc:   "XLISP-style Lisp interpreter (reader, shallow-binding eval, builtin table)",
		Source: withPrelude(liMF),
		Datasets: []Dataset{
			{Name: "8queens", Desc: "8 queens on a chessboard", Gen: func() []byte { return queensLisp(8) }},
			{Name: "9queens", Desc: "9 queens on a chessboard", Gen: func() []byte { return queensLisp(9) }},
			{Name: "sievel", Desc: "prime sieve, machine-generated flat lisp", Gen: func() []byte { return sieveLisp(260) }},
		},
	})
}

// Package dynpred simulates the hardware dynamic branch predictors
// the paper contrasts with static prediction: "dynamic methods
// usually involve attaching 1 or 2 bits to each branch and setting or
// incrementing those bits, as the program runs, to reflect the
// direction the branch most recently went in."
//
// The predictors implement vm.Tracer, so attaching one to a run
// measures its misprediction behaviour on exactly the branch stream
// the static predictors are evaluated against. Beyond the paper's
// 1-/2-bit schemes of [Smith 81], the zoo carries the history-based
// predictors the 1992 paper predates — two-level adaptive
// [Lee and Smith 84 / Yeh and Patt 91], gshare [McFarling 93] and
// Bi-Mode [Lee, Chen and Mudge 97] — so the reproduction can
// characterize which branches stay hard once history is available.
//
// Every scheme shares one tracer contract: branch events whose site
// id falls outside the predictor's tables (a tracer attached with a
// stale site count after a recompile) are never indexed — they are
// counted and surfaced as a structured *SiteRangeError from Err()
// instead of panicking the run — and every scheme attributes its
// mispredicts per site, which the H2P characterization lane consumes.
package dynpred

import (
	"fmt"

	"branchprof/internal/vm"
)

// Predictor is a dynamic branch predictor simulated over a run.
type Predictor interface {
	vm.Tracer
	// Name identifies the scheme in reports.
	Name() string
	// Executed returns the number of conditional branches seen (and
	// admitted: out-of-range sites are excluded, see Err).
	Executed() uint64
	// Mispredicts returns how many were predicted wrongly.
	Mispredicts() uint64
	// SiteExecuted returns per-site executed counts, indexed by static
	// branch site id. The slice is live; callers must not mutate it.
	SiteExecuted() []uint64
	// SiteMispredicts returns per-site mispredict counts, indexed by
	// static branch site id. The slice is live; callers must not
	// mutate it.
	SiteMispredicts() []uint64
	// Err reports structured trouble observed while tracing — today a
	// *SiteRangeError when any branch event carried a site id outside
	// the predictor's tables (program and predictor compiled from
	// different sources). Callers must check it after every traced
	// run; counters exclude the rejected events.
	Err() error
}

// SiteRangeError reports branch events whose site id fell outside the
// predictor's tables: the tracer was attached with a stale site count
// (the program was recompiled, or a profile/program pair mismatches).
// The predictor skips such events rather than indexing out of bounds;
// Count says how many were skipped and First which site arrived first.
type SiteRangeError struct {
	Scheme string // predictor name
	Sites  int    // table size the predictor was built for
	First  int32  // first out-of-range site id observed
	Count  uint64 // total out-of-range events skipped
}

// Error implements error.
func (e *SiteRangeError) Error() string {
	return fmt.Sprintf("dynpred: %s predictor sized for %d sites saw %d event(s) at out-of-range site(s) (first: %d); program and predictor disagree on the compiled shape",
		e.Scheme, e.Sites, e.Count, e.First)
}

// core carries the bookkeeping every scheme shares: aggregate and
// per-site executed/mispredict counters, and the bounds guard that
// turns a stale site id into a structured error instead of a panic.
type core struct {
	name        string
	sites       int
	executed    uint64
	mispredicts uint64
	siteExec    []uint64
	siteMiss    []uint64
	oob         *SiteRangeError
}

func newCore(name string, sites int) core {
	if sites < 0 {
		sites = 0
	}
	return core{
		name:     name,
		sites:    sites,
		siteExec: make([]uint64, sites),
		siteMiss: make([]uint64, sites),
	}
}

// admit bounds-checks a site id, recording rejects on the error
// surface. Every scheme's Branch must call it first and return early
// on false, so the contract is identical across the zoo.
func (c *core) admit(site int32) bool {
	if site >= 0 && int(site) < c.sites {
		return true
	}
	if c.oob == nil {
		c.oob = &SiteRangeError{Scheme: c.name, Sites: c.sites, First: site}
	}
	c.oob.Count++
	return false
}

// record books one admitted branch outcome.
func (c *core) record(site int32, miss bool) {
	c.executed++
	c.siteExec[site]++
	if miss {
		c.mispredicts++
		c.siteMiss[site]++
	}
}

// Name implements Predictor.
func (c *core) Name() string { return c.name }

// Executed implements Predictor.
func (c *core) Executed() uint64 { return c.executed }

// Mispredicts implements Predictor.
func (c *core) Mispredicts() uint64 { return c.mispredicts }

// SiteExecuted implements Predictor.
func (c *core) SiteExecuted() []uint64 { return c.siteExec }

// SiteMispredicts implements Predictor.
func (c *core) SiteMispredicts() []uint64 { return c.siteMiss }

// Err implements Predictor.
func (c *core) Err() error {
	if c.oob == nil {
		return nil
	}
	return c.oob
}

// Transfer implements vm.Tracer (every scheme here ignores non-branch
// transfers).
func (c *core) Transfer(vm.TransferKind, uint64) {}

// bump saturates a 2-bit counter toward the outcome.
func bump(s uint8, taken bool) uint8 {
	if taken {
		if s < 3 {
			return s + 1
		}
		return s
	}
	if s > 0 {
		return s - 1
	}
	return s
}

// OneBit is the classic last-direction predictor: one bit per static
// branch, predicting the direction the branch went last time. Initial
// prediction is not-taken.
type OneBit struct {
	core
	last []bool
}

// NewOneBit returns a one-bit predictor for a program with sites
// static branches.
func NewOneBit(sites int) *OneBit {
	p := &OneBit{core: newCore("1-bit", sites)}
	p.last = make([]bool, p.sites)
	return p
}

// Branch implements vm.Tracer.
func (p *OneBit) Branch(site int32, taken bool, _ uint64) {
	if !p.admit(site) {
		return
	}
	p.record(site, p.last[site] != taken)
	p.last[site] = taken
}

// TwoBit is the saturating two-bit counter predictor [Smith 81]: per
// static branch a counter in [0,3]; >=2 predicts taken; taken
// increments, not-taken decrements, saturating. Counters start at 1
// (weakly not-taken).
type TwoBit struct {
	core
	state []uint8
}

// NewTwoBit returns a two-bit predictor for sites static branches.
func NewTwoBit(sites int) *TwoBit {
	p := &TwoBit{core: newCore("2-bit", sites)}
	p.state = make([]uint8, p.sites)
	for i := range p.state {
		p.state[i] = 1
	}
	return p
}

// Branch implements vm.Tracer.
func (p *TwoBit) Branch(site int32, taken bool, _ uint64) {
	if !p.admit(site) {
		return
	}
	s := p.state[site]
	p.record(site, (s >= 2) != taken)
	p.state[site] = bump(s, taken)
}

// Static adapts a fixed per-site direction table to the Predictor
// interface so static and dynamic schemes can be measured by the same
// machinery. dirs[i] is true when site i is predicted taken.
type Static struct {
	core
	dirs []bool
}

// NewStatic wraps a direction table.
func NewStatic(name string, dirs []bool) *Static {
	return &Static{core: newCore(name, len(dirs)), dirs: dirs}
}

// Branch implements vm.Tracer.
func (p *Static) Branch(site int32, taken bool, _ uint64) {
	if !p.admit(site) {
		return
	}
	p.record(site, p.dirs[site] != taken)
}

// DefaultHistoryBits is the history register length the zoo's
// history-based schemes default to. 12 bits (4096-entry tables) is
// far beyond the working set of any workload analogue here, so the
// measured mispredicts reflect the scheme, not table pressure.
const DefaultHistoryBits = 12

// clampBits normalizes a history/table width to [1,20].
func clampBits(bits int) int {
	if bits <= 0 {
		return DefaultHistoryBits
	}
	if bits > 20 {
		return 20
	}
	return bits
}

// TwoLevel is the per-address two-level adaptive predictor
// [Lee and Smith 84 / Yeh and Patt's PAg]: each static branch keeps
// its own history register of the branch's last historyBits outcomes,
// which indexes one shared pattern table of saturating 2-bit
// counters. Loop exits and short repeating patterns become perfectly
// predictable once the history distinguishes them.
type TwoLevel struct {
	core
	hist    []uint32 // per-site branch history registers
	pattern []uint8  // shared second-level 2-bit counters
	mask    uint32
}

// NewTwoLevel returns a two-level adaptive predictor for sites static
// branches with historyBits of per-branch history (<=0 selects
// DefaultHistoryBits).
func NewTwoLevel(sites, historyBits int) *TwoLevel {
	bits := clampBits(historyBits)
	p := &TwoLevel{core: newCore("two-level", sites), mask: 1<<bits - 1}
	p.hist = make([]uint32, p.sites)
	p.pattern = make([]uint8, 1<<bits)
	for i := range p.pattern {
		p.pattern[i] = 1 // weakly not-taken, like TwoBit
	}
	return p
}

// Branch implements vm.Tracer.
func (p *TwoLevel) Branch(site int32, taken bool, _ uint64) {
	if !p.admit(site) {
		return
	}
	h := p.hist[site] & p.mask
	s := p.pattern[h]
	p.record(site, (s >= 2) != taken)
	p.pattern[h] = bump(s, taken)
	p.hist[site] = p.hist[site] << 1
	if taken {
		p.hist[site] |= 1
	}
}

// GShare is McFarling's global-history predictor: one global shift
// register of the last historyBits branch outcomes, XORed with the
// branch site to index a table of 2-bit counters. The XOR folds the
// branch identity into the history so correlated branches — one
// branch's outcome deciding another's — predict each other.
type GShare struct {
	core
	ghr   uint32
	table []uint8
	mask  uint32
}

// NewGShare returns a gshare predictor for sites static branches with
// a historyBits global register (<=0 selects DefaultHistoryBits).
func NewGShare(sites, historyBits int) *GShare {
	bits := clampBits(historyBits)
	p := &GShare{core: newCore("gshare", sites), mask: 1<<bits - 1}
	p.table = make([]uint8, 1<<bits)
	for i := range p.table {
		p.table[i] = 1
	}
	return p
}

// Branch implements vm.Tracer.
func (p *GShare) Branch(site int32, taken bool, _ uint64) {
	if !p.admit(site) {
		return
	}
	idx := (uint32(site) ^ p.ghr) & p.mask
	s := p.table[idx]
	p.record(site, (s >= 2) != taken)
	p.table[idx] = bump(s, taken)
	p.ghr = p.ghr << 1
	if taken {
		p.ghr |= 1
	}
	p.ghr &= p.mask
}

// BiMode is the Bi-Mode predictor [Lee, Chen and Mudge 97], the
// architecture of the ChampSim exemplar: the second-level table is
// split into a taken-biased and a not-taken-biased direction table,
// both indexed by global-history XOR site, with a per-site choice
// table of 2-bit counters selecting which bank predicts. Splitting by
// bias keeps a branch's dominant direction from being destructively
// aliased by branches biased the other way.
type BiMode struct {
	core
	ghr     uint32
	choice  []uint8 // first level: per-site bank selection
	takenT  []uint8 // taken-biased direction bank
	ntakenT []uint8 // not-taken-biased direction bank
	mask    uint32  // direction-bank index mask
	chMask  uint32  // choice-table index mask
}

// NewBiMode returns a Bi-Mode predictor for sites static branches.
// historyBits sizes the direction banks, choiceBits the choice table
// (<=0 selects DefaultHistoryBits for either).
func NewBiMode(sites, historyBits, choiceBits int) *BiMode {
	bits := clampBits(historyBits)
	cbits := clampBits(choiceBits)
	p := &BiMode{
		core:   newCore("bimode", sites),
		mask:   1<<bits - 1,
		chMask: 1<<cbits - 1,
	}
	p.choice = make([]uint8, 1<<cbits)
	p.takenT = make([]uint8, 1<<bits)
	p.ntakenT = make([]uint8, 1<<bits)
	for i := range p.choice {
		p.choice[i] = 1 // weakly select the not-taken bank
	}
	for i := range p.takenT {
		p.takenT[i] = 2 // the banks start at their bias
		p.ntakenT[i] = 1
	}
	return p
}

// Branch implements vm.Tracer.
func (p *BiMode) Branch(site int32, taken bool, _ uint64) {
	if !p.admit(site) {
		return
	}
	idx := (uint32(site) ^ p.ghr) & p.mask
	ci := uint32(site) & p.chMask
	chooseTaken := p.choice[ci] >= 2
	bank := p.ntakenT
	if chooseTaken {
		bank = p.takenT
	}
	pred := bank[idx] >= 2
	p.record(site, pred != taken)
	// Only the selected bank trains, preserving the banks' biases.
	bank[idx] = bump(bank[idx], taken)
	// The choice table trains toward the outcome, except when the
	// selected bank was right while the choice direction disagreed
	// with the outcome — overriding a correct bank choice would
	// un-learn a working assignment (the Bi-Mode update rule).
	if !(pred == taken && chooseTaken != taken) {
		p.choice[ci] = bump(p.choice[ci], taken)
	}
	p.ghr = p.ghr << 1
	if taken {
		p.ghr |= 1
	}
	p.ghr &= p.mask
}

// Zoo returns one fresh instance of every dynamic scheme at default
// sizing, in report order: 1-bit, 2-bit, two-level, gshare, bimode.
// Experiments attach the whole zoo via Multi so one VM run measures
// every scheme on the identical branch stream.
func Zoo(sites int) []Predictor {
	return []Predictor{
		NewOneBit(sites),
		NewTwoBit(sites),
		NewTwoLevel(sites, DefaultHistoryBits),
		NewGShare(sites, DefaultHistoryBits),
		NewBiMode(sites, DefaultHistoryBits, DefaultHistoryBits),
	}
}

// Multi fans one branch stream out to several predictors so a single
// (expensive) VM run measures every scheme at once.
type Multi struct {
	Predictors []Predictor
	// Extra tracers (e.g. a runlength recorder) observing the same
	// stream without being predictors.
	Extra []vm.Tracer
}

// Branch implements vm.Tracer.
func (m *Multi) Branch(site int32, taken bool, instrs uint64) {
	for _, p := range m.Predictors {
		p.Branch(site, taken, instrs)
	}
	for _, t := range m.Extra {
		t.Branch(site, taken, instrs)
	}
}

// Transfer implements vm.Tracer.
func (m *Multi) Transfer(kind vm.TransferKind, instrs uint64) {
	for _, p := range m.Predictors {
		p.Transfer(kind, instrs)
	}
	for _, t := range m.Extra {
		t.Transfer(kind, instrs)
	}
}

// Err returns the first structured error any fanned-out predictor
// accumulated, or nil. Callers attaching a Multi must check it after
// the run, exactly as they would a single predictor's Err.
func (m *Multi) Err() error {
	for _, p := range m.Predictors {
		if err := p.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Package dynpred simulates the hardware dynamic branch predictors
// the paper contrasts with static prediction: "dynamic methods
// usually involve attaching 1 or 2 bits to each branch and setting or
// incrementing those bits, as the program runs, to reflect the
// direction the branch most recently went in."
//
// The predictors implement vm.Tracer, so attaching one to a run
// measures its misprediction behaviour on exactly the branch stream
// the static predictors are evaluated against. This supports the
// extension experiment comparing profile-fed static prediction with
// the hardware schemes of [Smith 81] and [Lee and Smith 84].
package dynpred

import "branchprof/internal/vm"

// Predictor is a dynamic branch predictor simulated over a run.
type Predictor interface {
	vm.Tracer
	// Name identifies the scheme in reports.
	Name() string
	// Executed returns the number of conditional branches seen.
	Executed() uint64
	// Mispredicts returns how many were predicted wrongly.
	Mispredicts() uint64
}

// OneBit is the classic last-direction predictor: one bit per static
// branch, predicting the direction the branch went last time. Initial
// prediction is not-taken.
type OneBit struct {
	last        []bool
	executed    uint64
	mispredicts uint64
}

// NewOneBit returns a one-bit predictor for a program with sites
// static branches.
func NewOneBit(sites int) *OneBit {
	return &OneBit{last: make([]bool, sites)}
}

// Name implements Predictor.
func (p *OneBit) Name() string { return "1-bit" }

// Branch implements vm.Tracer.
func (p *OneBit) Branch(site int32, taken bool, _ uint64) {
	p.executed++
	if p.last[site] != taken {
		p.mispredicts++
	}
	p.last[site] = taken
}

// Transfer implements vm.Tracer (ignored).
func (p *OneBit) Transfer(vm.TransferKind, uint64) {}

// Executed implements Predictor.
func (p *OneBit) Executed() uint64 { return p.executed }

// Mispredicts implements Predictor.
func (p *OneBit) Mispredicts() uint64 { return p.mispredicts }

// TwoBit is the saturating two-bit counter predictor [Smith 81]: per
// static branch a counter in [0,3]; >=2 predicts taken; taken
// increments, not-taken decrements, saturating. Counters start at 1
// (weakly not-taken).
type TwoBit struct {
	state       []uint8
	executed    uint64
	mispredicts uint64
}

// NewTwoBit returns a two-bit predictor for sites static branches.
func NewTwoBit(sites int) *TwoBit {
	s := &TwoBit{state: make([]uint8, sites)}
	for i := range s.state {
		s.state[i] = 1
	}
	return s
}

// Name implements Predictor.
func (p *TwoBit) Name() string { return "2-bit" }

// Branch implements vm.Tracer.
func (p *TwoBit) Branch(site int32, taken bool, _ uint64) {
	p.executed++
	s := p.state[site]
	if (s >= 2) != taken {
		p.mispredicts++
	}
	if taken {
		if s < 3 {
			p.state[site] = s + 1
		}
	} else if s > 0 {
		p.state[site] = s - 1
	}
}

// Transfer implements vm.Tracer (ignored).
func (p *TwoBit) Transfer(vm.TransferKind, uint64) {}

// Executed implements Predictor.
func (p *TwoBit) Executed() uint64 { return p.executed }

// Mispredicts implements Predictor.
func (p *TwoBit) Mispredicts() uint64 { return p.mispredicts }

// Static adapts a fixed per-site direction table to the Predictor
// interface so static and dynamic schemes can be measured by the same
// machinery. dirs[i] is true when site i is predicted taken.
type Static struct {
	name        string
	dirs        []bool
	executed    uint64
	mispredicts uint64
}

// NewStatic wraps a direction table.
func NewStatic(name string, dirs []bool) *Static {
	return &Static{name: name, dirs: dirs}
}

// Name implements Predictor.
func (p *Static) Name() string { return p.name }

// Branch implements vm.Tracer.
func (p *Static) Branch(site int32, taken bool, _ uint64) {
	p.executed++
	if p.dirs[site] != taken {
		p.mispredicts++
	}
}

// Transfer implements vm.Tracer (ignored).
func (p *Static) Transfer(vm.TransferKind, uint64) {}

// Executed implements Predictor.
func (p *Static) Executed() uint64 { return p.executed }

// Mispredicts implements Predictor.
func (p *Static) Mispredicts() uint64 { return p.mispredicts }

// Multi fans one branch stream out to several predictors so a single
// (expensive) VM run measures every scheme at once.
type Multi struct {
	Predictors []Predictor
}

// Branch implements vm.Tracer.
func (m *Multi) Branch(site int32, taken bool, instrs uint64) {
	for _, p := range m.Predictors {
		p.Branch(site, taken, instrs)
	}
}

// Transfer implements vm.Tracer.
func (m *Multi) Transfer(kind vm.TransferKind, instrs uint64) {
	for _, p := range m.Predictors {
		p.Transfer(kind, instrs)
	}
}

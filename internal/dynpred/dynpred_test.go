package dynpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"branchprof/internal/vm"
)

func feed(p Predictor, outcomes []bool) {
	for _, o := range outcomes {
		p.Branch(0, o, 0)
	}
}

func TestOneBitTracksLastDirection(t *testing.T) {
	p := NewOneBit(1)
	// T T T N N: initial prediction N (miss), then hits, then the
	// flip misses once, then a hit.
	feed(p, []bool{true, true, true, false, false})
	if p.Executed() != 5 {
		t.Errorf("executed = %d", p.Executed())
	}
	if p.Mispredicts() != 2 {
		t.Errorf("mispredicts = %d, want 2", p.Mispredicts())
	}
}

func TestOneBitAlternatingIsWorstCase(t *testing.T) {
	p := NewOneBit(1)
	outcomes := make([]bool, 100)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	feed(p, outcomes)
	// Alternating defeats a last-direction predictor completely.
	if p.Mispredicts() != 100 {
		t.Errorf("alternating mispredicts = %d, want 100", p.Mispredicts())
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	p := NewTwoBit(1)
	// Train strongly taken, then a single not-taken blip costs one
	// miss but does not flip the prediction: the following taken is
	// still predicted correctly.
	feed(p, []bool{true, true, true, true}) // state saturates at 3
	before := p.Mispredicts()
	feed(p, []bool{false})
	feed(p, []bool{true})
	if p.Mispredicts() != before+1 {
		t.Errorf("blip cost %d misses, want 1 (hysteresis)", p.Mispredicts()-before)
	}
}

func TestTwoBitBeatsOneBitOnLoopExits(t *testing.T) {
	// Classic loop pattern: T T T ... N, repeated. The 1-bit scheme
	// misses twice per loop (exit + re-entry); 2-bit misses once.
	one := NewOneBit(1)
	two := NewTwoBit(1)
	for loop := 0; loop < 50; loop++ {
		for i := 0; i < 9; i++ {
			one.Branch(0, true, 0)
			two.Branch(0, true, 0)
		}
		one.Branch(0, false, 0)
		two.Branch(0, false, 0)
	}
	if two.Mispredicts() >= one.Mispredicts() {
		t.Errorf("2-bit (%d) should beat 1-bit (%d) on loop patterns",
			two.Mispredicts(), one.Mispredicts())
	}
}

func TestStaticMatchesEvaluate(t *testing.T) {
	// Static adapter must count exactly outcomes disagreeing with the
	// table.
	p := NewStatic("x", []bool{true, false})
	p.Branch(0, true, 0)  // hit
	p.Branch(0, false, 0) // miss
	p.Branch(1, false, 0) // hit
	p.Branch(1, true, 0)  // miss
	if p.Mispredicts() != 2 || p.Executed() != 4 {
		t.Errorf("static = %d/%d", p.Mispredicts(), p.Executed())
	}
	if p.Name() != "x" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestMultiFansOut(t *testing.T) {
	a := NewOneBit(1)
	b := NewTwoBit(1)
	m := &Multi{Predictors: []Predictor{a, b}}
	m.Branch(0, true, 1)
	m.Transfer(vm.TransferCall, 2)
	if a.Executed() != 1 || b.Executed() != 1 {
		t.Error("multi did not fan out")
	}
}

// TestMispredictsNeverExceedExecuted holds for any outcome stream and
// any scheme.
func TestMispredictsNeverExceedExecuted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := rng.Intn(8) + 1
		preds := []Predictor{
			NewOneBit(sites),
			NewTwoBit(sites),
			NewStatic("s", make([]bool, sites)),
		}
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			site := int32(rng.Intn(sites))
			taken := rng.Intn(2) == 1
			for _, p := range preds {
				p.Branch(site, taken, uint64(i))
			}
		}
		for _, p := range preds {
			if p.Executed() != uint64(n) || p.Mispredicts() > p.Executed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTwoBitOptimalOnBiasedStream: on a heavily biased stream the
// 2-bit scheme's miss rate approaches the minority rate.
func TestTwoBitOptimalOnBiasedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewTwoBit(1)
	minority := 0
	const n = 10000
	for i := 0; i < n; i++ {
		taken := rng.Intn(10) != 0 // 90% taken
		if !taken {
			minority++
		}
		p.Branch(0, taken, uint64(i))
	}
	// The 2-bit predictor should miss at most ~2x the minority count.
	if p.Mispredicts() > uint64(2*minority+10) {
		t.Errorf("2-bit missed %d of %d on a 90/10 stream (minority %d)",
			p.Mispredicts(), n, minority)
	}
}

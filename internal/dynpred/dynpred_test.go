package dynpred

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"branchprof/internal/vm"
)

func feed(p Predictor, outcomes []bool) {
	for _, o := range outcomes {
		p.Branch(0, o, 0)
	}
}

func TestOneBitTracksLastDirection(t *testing.T) {
	p := NewOneBit(1)
	// T T T N N: initial prediction N (miss), then hits, then the
	// flip misses once, then a hit.
	feed(p, []bool{true, true, true, false, false})
	if p.Executed() != 5 {
		t.Errorf("executed = %d", p.Executed())
	}
	if p.Mispredicts() != 2 {
		t.Errorf("mispredicts = %d, want 2", p.Mispredicts())
	}
}

func TestOneBitAlternatingIsWorstCase(t *testing.T) {
	p := NewOneBit(1)
	outcomes := make([]bool, 100)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	feed(p, outcomes)
	// Alternating defeats a last-direction predictor completely.
	if p.Mispredicts() != 100 {
		t.Errorf("alternating mispredicts = %d, want 100", p.Mispredicts())
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	p := NewTwoBit(1)
	// Train strongly taken, then a single not-taken blip costs one
	// miss but does not flip the prediction: the following taken is
	// still predicted correctly.
	feed(p, []bool{true, true, true, true}) // state saturates at 3
	before := p.Mispredicts()
	feed(p, []bool{false})
	feed(p, []bool{true})
	if p.Mispredicts() != before+1 {
		t.Errorf("blip cost %d misses, want 1 (hysteresis)", p.Mispredicts()-before)
	}
}

func TestTwoBitBeatsOneBitOnLoopExits(t *testing.T) {
	// Classic loop pattern: T T T ... N, repeated. The 1-bit scheme
	// misses twice per loop (exit + re-entry); 2-bit misses once.
	one := NewOneBit(1)
	two := NewTwoBit(1)
	for loop := 0; loop < 50; loop++ {
		for i := 0; i < 9; i++ {
			one.Branch(0, true, 0)
			two.Branch(0, true, 0)
		}
		one.Branch(0, false, 0)
		two.Branch(0, false, 0)
	}
	if two.Mispredicts() >= one.Mispredicts() {
		t.Errorf("2-bit (%d) should beat 1-bit (%d) on loop patterns",
			two.Mispredicts(), one.Mispredicts())
	}
}

func TestStaticMatchesEvaluate(t *testing.T) {
	// Static adapter must count exactly outcomes disagreeing with the
	// table.
	p := NewStatic("x", []bool{true, false})
	p.Branch(0, true, 0)  // hit
	p.Branch(0, false, 0) // miss
	p.Branch(1, false, 0) // hit
	p.Branch(1, true, 0)  // miss
	if p.Mispredicts() != 2 || p.Executed() != 4 {
		t.Errorf("static = %d/%d", p.Mispredicts(), p.Executed())
	}
	if p.Name() != "x" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestMultiFansOut(t *testing.T) {
	a := NewOneBit(1)
	b := NewTwoBit(1)
	m := &Multi{Predictors: []Predictor{a, b}}
	m.Branch(0, true, 1)
	m.Transfer(vm.TransferCall, 2)
	if a.Executed() != 1 || b.Executed() != 1 {
		t.Error("multi did not fan out")
	}
}

// TestMispredictsNeverExceedExecuted holds for any outcome stream and
// any scheme.
func TestMispredictsNeverExceedExecuted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := rng.Intn(8) + 1
		preds := []Predictor{
			NewOneBit(sites),
			NewTwoBit(sites),
			NewStatic("s", make([]bool, sites)),
		}
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			site := int32(rng.Intn(sites))
			taken := rng.Intn(2) == 1
			for _, p := range preds {
				p.Branch(site, taken, uint64(i))
			}
		}
		for _, p := range preds {
			if p.Executed() != uint64(n) || p.Mispredicts() > p.Executed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTwoBitOptimalOnBiasedStream: on a heavily biased stream the
// 2-bit scheme's miss rate approaches the minority rate.
func TestTwoBitOptimalOnBiasedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewTwoBit(1)
	minority := 0
	const n = 10000
	for i := 0; i < n; i++ {
		taken := rng.Intn(10) != 0 // 90% taken
		if !taken {
			minority++
		}
		p.Branch(0, taken, uint64(i))
	}
	// The 2-bit predictor should miss at most ~2x the minority count.
	if p.Mispredicts() > uint64(2*minority+10) {
		t.Errorf("2-bit missed %d of %d on a 90/10 stream (minority %d)",
			p.Mispredicts(), n, minority)
	}
}

// --- history-based schemes -------------------------------------------

// TestTwoLevelLearnsAlternation: an alternating stream defeats both
// counter schemes but is a trivial pattern for any history-based
// predictor — after warmup the pattern table maps history TNTN… to the
// next outcome exactly.
func TestTwoLevelLearnsAlternation(t *testing.T) {
	p := NewTwoLevel(1, 4)
	const n = 1000
	for i := 0; i < n; i++ {
		p.Branch(0, i%2 == 0, uint64(i))
	}
	// Allow a generous warmup; steady state must be miss-free.
	if p.Mispredicts() > 50 {
		t.Errorf("two-level missed %d of %d alternating outcomes", p.Mispredicts(), n)
	}
	one := NewOneBit(1)
	for i := 0; i < n; i++ {
		one.Branch(0, i%2 == 0, uint64(i))
	}
	if p.Mispredicts() >= one.Mispredicts() {
		t.Errorf("two-level (%d) should crush 1-bit (%d) on alternation",
			p.Mispredicts(), one.Mispredicts())
	}
}

// TestTwoLevelLearnsLoopExit: a fixed-trip-count loop (TTTTN repeated)
// is periodic, so with enough history bits the two-level scheme
// predicts the exit itself — beating even the 2-bit counter, which
// must miss every exit.
func TestTwoLevelLearnsLoopExit(t *testing.T) {
	p := NewTwoLevel(1, 8)
	two := NewTwoBit(1)
	const loops = 200
	for l := 0; l < loops; l++ {
		for i := 0; i < 4; i++ {
			p.Branch(0, true, 0)
			two.Branch(0, true, 0)
		}
		p.Branch(0, false, 0)
		two.Branch(0, false, 0)
	}
	// 2-bit misses once per loop at steady state; two-level learns the
	// period and stops missing entirely after warmup.
	if p.Mispredicts() >= two.Mispredicts()/2 {
		t.Errorf("two-level missed %d, 2-bit %d: loop exit not learned",
			p.Mispredicts(), two.Mispredicts())
	}
}

// TestGShareLearnsCorrelation: two sites where the second branch's
// outcome equals the first's — invisible to per-site schemes when the
// second site's own stream looks random, but the global history
// carries exactly the bit gshare needs.
func TestGShareLearnsCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGShare(2, 8)
	two := NewTwoBit(2)
	const n = 5000
	for i := 0; i < n; i++ {
		lead := rng.Intn(2) == 1
		g.Branch(0, lead, 0)
		two.Branch(0, lead, 0)
		// Site 1 copies site 0's outcome: pure correlation.
		g.Branch(1, lead, 0)
		two.Branch(1, lead, 0)
	}
	gMiss := g.SiteMispredicts()[1]
	tMiss := two.SiteMispredicts()[1]
	// The 2-bit counter sees a coin flip at site 1 (~50% miss); gshare
	// sees the correlated history and should approach 0.
	if gMiss*4 > tMiss {
		t.Errorf("gshare missed %d at the correlated site, 2-bit %d — correlation not learned",
			gMiss, tMiss)
	}
}

// TestBiModeLearnsCorrelation: the bias-partitioned tables must handle
// the same correlated pattern, and also keep a strongly biased site
// cheap (the design goal: stop aliasing from destroying biased
// branches).
func TestBiModeLearnsCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	b := NewBiMode(2, 8, 8)
	two := NewTwoBit(2)
	const n = 5000
	for i := 0; i < n; i++ {
		lead := rng.Intn(2) == 1
		b.Branch(0, lead, 0)
		two.Branch(0, lead, 0)
		b.Branch(1, lead, 0)
		two.Branch(1, lead, 0)
	}
	bMiss := b.SiteMispredicts()[1]
	tMiss := two.SiteMispredicts()[1]
	if bMiss*4 > tMiss {
		t.Errorf("bimode missed %d at the correlated site, 2-bit %d — correlation not learned",
			bMiss, tMiss)
	}
}

func TestBiModeKeepsBiasedSiteCheap(t *testing.T) {
	b := NewBiMode(1, 6, 6)
	const n = 2000
	misses := 0
	for i := 0; i < n; i++ {
		taken := i%50 != 49 // 98% taken
		b.Branch(0, taken, 0)
		if !taken {
			misses++
		}
	}
	// A biased branch should cost about its minority count, not more
	// than 2x it (plus warmup slack).
	if b.Mispredicts() > uint64(2*misses+20) {
		t.Errorf("bimode missed %d of %d on a 98/2 stream", b.Mispredicts(), n)
	}
}

// TestZooAttributionConsistent: for every scheme, per-site attribution
// must sum exactly to the totals, on any stream.
func TestZooAttributionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := rng.Intn(6) + 1
		preds := Zoo(sites)
		n := rng.Intn(400)
		for i := 0; i < n; i++ {
			site := int32(rng.Intn(sites))
			taken := rng.Intn(2) == 1
			for _, p := range preds {
				p.Branch(site, taken, uint64(i))
			}
		}
		for _, p := range preds {
			var exec, miss uint64
			for _, v := range p.SiteExecuted() {
				exec += v
			}
			for _, v := range p.SiteMispredicts() {
				miss += v
			}
			if exec != p.Executed() || miss != p.Mispredicts() || p.Err() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// --- Multi ≡ alone ---------------------------------------------------

// TestMultiEquivalentToAlone: fanning a stream through Multi must
// leave every predictor in exactly the state it reaches alone — Multi
// is plumbing, not a scheme.
func TestMultiEquivalentToAlone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := rng.Intn(6) + 1
		// Two identically constructed fleets.
		together := Zoo(sites)
		alone := Zoo(sites)
		var tracers []Predictor
		tracers = append(tracers, together...)
		m := &Multi{Predictors: tracers}
		n := rng.Intn(400)
		for i := 0; i < n; i++ {
			site := int32(rng.Intn(sites + 1)) // occasionally out of range
			taken := rng.Intn(2) == 1
			m.Branch(site, taken, uint64(i))
			if rng.Intn(16) == 0 {
				m.Transfer(vm.TransferCall, uint64(i))
			}
			for _, p := range alone {
				p.Branch(site, taken, uint64(i))
			}
		}
		for i := range together {
			a, b := together[i], alone[i]
			if a.Executed() != b.Executed() || a.Mispredicts() != b.Mispredicts() {
				return false
			}
			am, bm := a.SiteMispredicts(), b.SiteMispredicts()
			for j := range am {
				if am[j] != bm[j] {
					return false
				}
			}
			if (a.Err() == nil) != (b.Err() == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// --- the hardened tracer contract ------------------------------------

// TestStaleSiteCountDoesNotPanic is the regression test for the
// out-of-range crash: a predictor sized from a stale compilation used
// to index p.last[site] straight into a panic. The contract now: the
// event is excluded from every counter and surfaced through Err().
func TestStaleSiteCountDoesNotPanic(t *testing.T) {
	preds := append(Zoo(2), NewStatic("s", []bool{true, false}))
	for _, p := range preds {
		p.Branch(0, true, 0)   // in range
		p.Branch(5, true, 1)   // beyond the table
		p.Branch(-1, false, 2) // negative
		p.Branch(1, false, 3)  // in range again

		if p.Executed() != 2 {
			t.Errorf("%s: executed = %d, want 2 (oob events excluded)", p.Name(), p.Executed())
		}
		if len(p.SiteExecuted()) != 2 {
			t.Errorf("%s: site table resized to %d", p.Name(), len(p.SiteExecuted()))
		}
		err := p.Err()
		if err == nil {
			t.Fatalf("%s: Err() = nil after out-of-range events", p.Name())
		}
		var sre *SiteRangeError
		if !errors.As(err, &sre) {
			t.Fatalf("%s: Err() = %v, want *SiteRangeError", p.Name(), err)
		}
		if sre.Count != 2 || sre.First != 5 || sre.Sites != 2 {
			t.Errorf("%s: SiteRangeError = %+v", p.Name(), sre)
		}
	}

	// A clean stream reports no error.
	clean := NewTwoBit(2)
	clean.Branch(0, true, 0)
	if clean.Err() != nil {
		t.Errorf("clean predictor Err() = %v", clean.Err())
	}

	// Multi surfaces the first predictor's contract violation.
	m := &Multi{Predictors: Zoo(1)}
	m.Branch(3, true, 0)
	if m.Err() == nil {
		t.Error("Multi.Err() = nil after fanning out an oob event")
	}
}

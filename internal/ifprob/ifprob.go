// Package ifprob models the paper's IFPROBBER tool: per-static-branch
// taken/total counters gathered during a run, a database that
// accumulates counters across runs, and source-level feedback that
// re-emits MF source annotated with IFPROB directives.
package ifprob

import (
	"fmt"
	"strings"

	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

// Profile holds branch outcome counts for one run (or for several
// accumulated runs) of a single compiled program. Slices are indexed
// by static branch site id.
type Profile struct {
	Program string   // program (source unit) name
	Dataset string   // dataset name, or a description like "sum of ..."
	Taken   []uint64 // times each site's branch was taken
	Total   []uint64 // times each site's branch executed
	Instrs  uint64   // instructions executed during the profiled run(s)
}

// FromRun extracts the branch profile of a completed run.
func FromRun(program, dataset string, res *vm.Result) *Profile {
	p := &Profile{
		Program: program,
		Dataset: dataset,
		Taken:   make([]uint64, len(res.SiteTaken)),
		Total:   make([]uint64, len(res.SiteTotal)),
		Instrs:  res.Instrs,
	}
	copy(p.Taken, res.SiteTaken)
	copy(p.Total, res.SiteTotal)
	return p
}

// Sites returns the number of static branch sites the profile covers.
func (p *Profile) Sites() int { return len(p.Total) }

// CheckConsistent validates the structural invariants a profile must
// satisfy after deserialization: parallel Taken/Total slices and no
// site taken more often than it executed. Corrupt or hand-edited
// persisted profiles fail here instead of poisoning downstream
// accounting.
func (p *Profile) CheckConsistent() error {
	if len(p.Taken) != len(p.Total) {
		return fmt.Errorf("ifprob: profile for %s has %d taken slots but %d total slots",
			p.Program, len(p.Taken), len(p.Total))
	}
	for i := range p.Total {
		if p.Taken[i] > p.Total[i] {
			return fmt.Errorf("ifprob: profile for %s: site %d taken %d > executed %d",
				p.Program, i, p.Taken[i], p.Total[i])
		}
	}
	return nil
}

// Executed returns the total number of conditional branches executed.
func (p *Profile) Executed() uint64 {
	var n uint64
	for _, t := range p.Total {
		n += t
	}
	return n
}

// TakenCount returns the total number of taken branches.
func (p *Profile) TakenCount() uint64 {
	var n uint64
	for _, t := range p.Taken {
		n += t
	}
	return n
}

// PercentTaken returns the fraction of executed branches that were
// taken, in [0,1]. The paper observed this to be nearly constant
// across datasets of a program (within 9%, spice2g6 excepted).
func (p *Profile) PercentTaken() float64 {
	ex := p.Executed()
	if ex == 0 {
		return 0
	}
	return float64(p.TakenCount()) / float64(ex)
}

// Coverage returns the fraction of static sites that executed at
// least once.
func (p *Profile) Coverage() float64 {
	if len(p.Total) == 0 {
		return 0
	}
	n := 0
	for _, t := range p.Total {
		if t > 0 {
			n++
		}
	}
	return float64(n) / float64(len(p.Total))
}

// Merge adds o's counts into p (the unscaled accumulation the
// IFPROBBER database performed after every run). The profiles must
// describe the same compiled program.
func (p *Profile) Merge(o *Profile) error {
	if p.Program != o.Program {
		return fmt.Errorf("ifprob: merging profile of %q into %q", o.Program, p.Program)
	}
	if len(p.Total) != len(o.Total) {
		return fmt.Errorf("ifprob: site count mismatch %d vs %d (recompiled with different options?)", len(p.Total), len(o.Total))
	}
	for i := range p.Total {
		p.Taken[i] += o.Taken[i]
		p.Total[i] += o.Total[i]
	}
	p.Instrs += o.Instrs
	if !p.hasDataset(o.Dataset) {
		p.Dataset = p.Dataset + "+" + o.Dataset
	}
	return nil
}

// hasDataset reports whether name is already one of the
// "+"-separated dataset names accumulated in p.Dataset, so repeated
// merges of the same dataset (a long-running service re-profiling a
// program) don't grow the label without bound.
func (p *Profile) hasDataset(name string) bool {
	rest := p.Dataset
	for rest != "" {
		cur, tail, _ := strings.Cut(rest, "+")
		if cur == name {
			return true
		}
		rest = tail
	}
	return false
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	q := &Profile{Program: p.Program, Dataset: p.Dataset, Instrs: p.Instrs}
	q.Taken = append([]uint64(nil), p.Taken...)
	q.Total = append([]uint64(nil), p.Total...)
	return q
}

// SiteStat describes one site's accumulated behaviour for reports.
type SiteStat struct {
	Site  isa.BranchSite
	Taken uint64
	Total uint64
}

// Stats pairs the profile with the program's site table.
func (p *Profile) Stats(prog *isa.Program) ([]SiteStat, error) {
	if len(prog.Sites) != len(p.Total) {
		return nil, fmt.Errorf("ifprob: profile has %d sites, program has %d", len(p.Total), len(prog.Sites))
	}
	out := make([]SiteStat, len(p.Total))
	for i := range p.Total {
		out[i] = SiteStat{Site: prog.Sites[i], Taken: p.Taken[i], Total: p.Total[i]}
	}
	return out, nil
}

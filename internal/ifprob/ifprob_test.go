package ifprob

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

func mkProfile(program, dataset string, taken, total []uint64, instrs uint64) *Profile {
	return &Profile{Program: program, Dataset: dataset, Taken: taken, Total: total, Instrs: instrs}
}

func TestFromRunCopies(t *testing.T) {
	res := &vm.Result{
		Instrs:    500,
		SiteTaken: []uint64{1, 2},
		SiteTotal: []uint64{3, 4},
	}
	p := FromRun("prog", "ds", res)
	res.SiteTaken[0] = 99 // must not alias
	if p.Taken[0] != 1 || p.Total[1] != 4 || p.Instrs != 500 {
		t.Errorf("profile = %+v", p)
	}
	if p.Executed() != 7 || p.TakenCount() != 3 {
		t.Errorf("executed/taken = %d/%d", p.Executed(), p.TakenCount())
	}
	if p.PercentTaken() != 3.0/7 {
		t.Errorf("percent taken = %v", p.PercentTaken())
	}
	if p.Coverage() != 1.0 {
		t.Errorf("coverage = %v", p.Coverage())
	}
}

func TestMergeAccumulates(t *testing.T) {
	a := mkProfile("p", "d1", []uint64{1, 0}, []uint64{2, 0}, 100)
	b := mkProfile("p", "d2", []uint64{3, 5}, []uint64{4, 10}, 200)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Taken[0] != 4 || a.Total[1] != 10 || a.Instrs != 300 {
		t.Errorf("merged = %+v", a)
	}
	if !strings.Contains(a.Dataset, "d1") || !strings.Contains(a.Dataset, "d2") {
		t.Errorf("dataset label = %q", a.Dataset)
	}
}

// TestMergeDedupesDatasetLabel: re-merging an already-accumulated
// dataset must not grow the label — a long-running daemon re-profiles
// the same program/dataset pair indefinitely.
func TestMergeDedupesDatasetLabel(t *testing.T) {
	a := mkProfile("p", "d", []uint64{1}, []uint64{2}, 10)
	for i := 0; i < 100; i++ {
		if err := a.Merge(mkProfile("p", "d", []uint64{1}, []uint64{2}, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Dataset != "d" {
		t.Errorf("dataset label grew under repeated merges: %q", a.Dataset)
	}
	if err := a.Merge(mkProfile("p", "d2", []uint64{1}, []uint64{2}, 10)); err != nil {
		t.Fatal(err)
	}
	if a.Dataset != "d+d2" {
		t.Errorf("dataset label = %q, want d+d2", a.Dataset)
	}
	if err := a.Merge(mkProfile("p", "d", []uint64{0}, []uint64{0}, 0)); err != nil {
		t.Fatal(err)
	}
	if a.Dataset != "d+d2" {
		t.Errorf("dataset label after re-merge = %q, want d+d2", a.Dataset)
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	a := mkProfile("p", "d", []uint64{1}, []uint64{1}, 0)
	if err := a.Merge(mkProfile("q", "d", []uint64{1}, []uint64{1}, 0)); err == nil {
		t.Error("cross-program merge accepted")
	}
	if err := a.Merge(mkProfile("p", "d", []uint64{1, 2}, []uint64{1, 2}, 0)); err == nil {
		t.Error("mismatched site-count merge accepted")
	}
}

// TestMergeOrderIndependent: accumulating runs in any order yields the
// same counts — the database property the IFPROBBER relied on.
func TestMergeOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(8) + 1
		mk := func(ds string) *Profile {
			taken := make([]uint64, k)
			total := make([]uint64, k)
			for i := range total {
				total[i] = uint64(rng.Intn(100))
				if total[i] > 0 {
					taken[i] = uint64(rng.Intn(int(total[i]) + 1))
				}
			}
			return mkProfile("p", ds, taken, total, uint64(rng.Intn(10000)))
		}
		ps := []*Profile{mk("a"), mk("b"), mk("c")}
		ab := ps[0].Clone()
		if ab.Merge(ps[1]) != nil || ab.Merge(ps[2]) != nil {
			return false
		}
		cb := ps[2].Clone()
		if cb.Merge(ps[0]) != nil || cb.Merge(ps[1]) != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if ab.Taken[i] != cb.Taken[i] || ab.Total[i] != cb.Total[i] {
				return false
			}
		}
		return ab.Instrs == cb.Instrs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDBAccumulateAndRoundTrip(t *testing.T) {
	db := NewDB()
	if err := db.Add(mkProfile("p", "d1", []uint64{1}, []uint64{2}, 10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(mkProfile("p", "d2", []uint64{3}, []uint64{4}, 20)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(mkProfile("q", "d1", []uint64{5}, []uint64{6}, 30)); err != nil {
		t.Fatal(err)
	}
	got := db.Get("p")
	if got.Taken[0] != 4 || got.Total[0] != 6 {
		t.Errorf("accumulated = %+v", got)
	}
	if db.Get("missing") != nil {
		t.Error("missing program returned a profile")
	}
	if names := db.Programs(); len(names) != 2 || names[0] != "p" || names[1] != "q" {
		t.Errorf("programs = %v", names)
	}

	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got2 := loaded.Get("p")
	if got2.Taken[0] != 4 || got2.Total[0] != 6 || got2.Instrs != 30 {
		t.Errorf("loaded = %+v", got2)
	}

	// Mutating the returned copy must not affect the database.
	got2.Taken[0] = 999
	if loaded.Get("p").Taken[0] != 4 {
		t.Error("Get returned an aliased profile")
	}
}

// TestSaveConcurrentWithAdd: Save snapshots the profiles under the
// lock and must checksum exactly the bytes it persists, even while
// Add/Merge mutates the live counters concurrently (the server calls
// both from request handlers). Run under -race; a save that aliased
// the live slices would persist a checksum-mismatched file that Load
// reports as corrupt.
func TestSaveConcurrentWithAdd(t *testing.T) {
	db := NewDB()
	taken := make([]uint64, 64)
	total := make([]uint64, 64)
	for i := range total {
		taken[i], total[i] = 1, 2
	}
	if err := db.Add(mkProfile("p", "d", taken, total, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := db.Add(mkProfile("p", "d", taken, total, 1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := db.Save(path); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			t.Fatalf("save raced with add: %v", err)
		}
	}
	<-done
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func siteProg() *isa.Program {
	return &isa.Program{
		Source: "p",
		Sites: []isa.BranchSite{
			{ID: 0, Func: "main", Line: 2, Col: 1, Label: "if"},
			{ID: 1, Func: "main", Line: 3, Col: 5, Label: "while", LoopBack: true},
			{ID: 2, Func: "main", Line: 3, Col: 12, Label: "&&"},
		},
	}
}

func TestDirectivesOrdered(t *testing.T) {
	prog := siteProg()
	p := mkProfile("p", "d", []uint64{1, 2, 3}, []uint64{4, 5, 6}, 0)
	dirs, err := Directives(prog, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 3 {
		t.Fatalf("got %d directives", len(dirs))
	}
	if dirs[0].Line != 2 || dirs[1].Col != 5 || dirs[2].Col != 12 {
		t.Errorf("directive order wrong: %+v", dirs)
	}
	if !strings.Contains(dirs[0].String(), "IFPROB") {
		t.Errorf("directive format: %s", dirs[0])
	}
}

func TestAnnotateSource(t *testing.T) {
	prog := siteProg()
	p := mkProfile("p", "d", []uint64{1, 2, 3}, []uint64{4, 5, 6}, 0)
	src := "line one\nif (x) {\nwhile (a && b) {\nlast"
	out, err := AnnotateSource(src, prog, p)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("line count changed: %d", len(lines))
	}
	if strings.Contains(lines[0], "IFPROB") {
		t.Error("line 1 should be unannotated")
	}
	if !strings.Contains(lines[1], "IFPROB(if@2:1, 1, 4)") {
		t.Errorf("line 2 = %q", lines[1])
	}
	if strings.Count(lines[2], "IFPROB") != 2 {
		t.Errorf("line 3 should carry two directives: %q", lines[2])
	}
}

func TestStatsMismatch(t *testing.T) {
	p := mkProfile("p", "d", []uint64{1}, []uint64{1}, 0)
	if _, err := p.Stats(siteProg()); err == nil {
		t.Error("mismatched stats accepted")
	}
}

// TestDirectiveRoundTrip is the full feedback loop: annotate source
// with a profile, parse the directives back, and rebuild an identical
// profile against the same program.
func TestDirectiveRoundTrip(t *testing.T) {
	prog := siteProg()
	p := mkProfile("p", "d", []uint64{1, 2, 3}, []uint64{4, 5, 6}, 0)
	src := "line one\nif (x) {\nwhile (a && b) {\nlast"
	annotated, err := AnnotateSource(src, prog, p)
	if err != nil {
		t.Fatal(err)
	}
	dirs := ParseDirectives(annotated)
	if len(dirs) != 3 {
		t.Fatalf("parsed %d directives, want 3", len(dirs))
	}
	rebuilt := ProfileFromDirectives(prog, dirs)
	for i := range p.Total {
		if rebuilt.Taken[i] != p.Taken[i] || rebuilt.Total[i] != p.Total[i] {
			t.Errorf("site %d: rebuilt %d/%d, want %d/%d",
				i, rebuilt.Taken[i], rebuilt.Total[i], p.Taken[i], p.Total[i])
		}
	}
}

// TestParseDirectivesIgnoresGarbage: malformed directives and stale
// positions are skipped, not errors.
func TestParseDirectivesIgnoresGarbage(t *testing.T) {
	dirs := ParseDirectives("x //!MF! IFPROB(bogus) y //!MF! IFPROB(if@9:9, 1, 2)")
	if len(dirs) != 1 {
		t.Fatalf("parsed %d directives, want 1", len(dirs))
	}
	prog := siteProg()
	rebuilt := ProfileFromDirectives(prog, dirs) // 9:9 matches nothing
	if rebuilt.Executed() != 0 {
		t.Errorf("stale directive contributed counts: %+v", rebuilt)
	}
}

package ifprob

import (
	"fmt"
	"sort"
	"strings"

	"branchprof/internal/isa"
)

// Directive is the feedback the paper's utility inserted into source:
// for one source-level branch, how often it was taken out of how many
// executions on the accumulated previous runs.
type Directive struct {
	Line  int
	Col   int
	Label string
	Taken uint64
	Total uint64
}

// String renders the directive in the spirit of the Multiflow
// compiler's C!MF! IFPROB comments.
func (d Directive) String() string {
	return fmt.Sprintf("//!MF! IFPROB(%s@%d:%d, %d, %d)", d.Label, d.Line, d.Col, d.Taken, d.Total)
}

// Directives converts an accumulated profile into per-branch feedback
// directives, ordered by source position.
func Directives(prog *isa.Program, p *Profile) ([]Directive, error) {
	stats, err := p.Stats(prog)
	if err != nil {
		return nil, err
	}
	out := make([]Directive, 0, len(stats))
	for _, s := range stats {
		out = append(out, Directive{
			Line:  s.Site.Line,
			Col:   s.Site.Col,
			Label: s.Site.Label,
			Taken: s.Taken,
			Total: s.Total,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out, nil
}

// ParseDirectives extracts IFPROB directives previously embedded in
// annotated source — the consuming half of the feedback loop: "a call
// to a utility feeds the branch counts back into the source in the
// form of the above directives", which the recompiling compiler then
// uses as predictions. Directives are comments, so the annotated
// source compiles to the same site table as the original, and each
// directive re-attaches to its site by label, line and column.
func ParseDirectives(src string) []Directive {
	var out []Directive
	for _, line := range strings.Split(src, "\n") {
		rest := line
		for {
			idx := strings.Index(rest, "//!MF! IFPROB(")
			if idx < 0 {
				break
			}
			rest = rest[idx+len("//!MF! IFPROB("):]
			end := strings.IndexByte(rest, ')')
			if end < 0 {
				break
			}
			if d, ok := parseDirectiveBody(rest[:end]); ok {
				out = append(out, d)
			}
			rest = rest[end+1:]
		}
	}
	return out
}

// parseDirectiveBody parses "label@line:col, taken, total".
func parseDirectiveBody(s string) (Directive, bool) {
	var d Directive
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return d, false
	}
	head := strings.TrimSpace(parts[0])
	at := strings.LastIndexByte(head, '@')
	if at < 0 {
		return d, false
	}
	d.Label = head[:at]
	if _, err := fmt.Sscanf(head[at+1:], "%d:%d", &d.Line, &d.Col); err != nil {
		return d, false
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(parts[1]), "%d", &d.Taken); err != nil {
		return d, false
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(parts[2]), "%d", &d.Total); err != nil {
		return d, false
	}
	return d, true
}

// ProfileFromDirectives rebuilds a branch profile from directives by
// matching each to a site with the same label, line and column.
// Directives that match no site are ignored (the source may have been
// edited since annotation); sites with no directive stay at zero so
// predictors fall back to their heuristic.
func ProfileFromDirectives(prog *isa.Program, dirs []Directive) *Profile {
	p := &Profile{
		Program: prog.Source,
		Dataset: "directives",
		Taken:   make([]uint64, len(prog.Sites)),
		Total:   make([]uint64, len(prog.Sites)),
	}
	type key struct {
		label     string
		line, col int
	}
	bySite := make(map[key]int, len(prog.Sites))
	for i, s := range prog.Sites {
		bySite[key{s.Label, s.Line, s.Col}] = i
	}
	for _, d := range dirs {
		if i, ok := bySite[key{d.Label, d.Line, d.Col}]; ok {
			p.Taken[i] += d.Taken
			p.Total[i] += d.Total
		}
	}
	return p
}

// AnnotateSource re-emits MF source with each branch-bearing line
// suffixed by its IFPROB directives — the user-visible form of the
// feedback loop ("the user sees everything occurring at the source
// level").
func AnnotateSource(src string, prog *isa.Program, p *Profile) (string, error) {
	dirs, err := Directives(prog, p)
	if err != nil {
		return "", err
	}
	byLine := make(map[int][]Directive)
	for _, d := range dirs {
		byLine[d.Line] = append(byLine[d.Line], d)
	}
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, line := range lines {
		b.WriteString(line)
		if ds, ok := byLine[i+1]; ok {
			for _, d := range ds {
				b.WriteString("  ")
				b.WriteString(d.String())
			}
		}
		if i < len(lines)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

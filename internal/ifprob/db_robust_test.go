package ifprob

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"branchprof/internal/faults"
)

func saveDB(t *testing.T, path string) *DB {
	t.Helper()
	db := NewDB()
	if err := db.Add(mkProfile("fib", "small", []uint64{3, 0}, []uint64{5, 2}, 1234)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(mkProfile("fib", "large", []uint64{30, 1}, []uint64{50, 2}, 9876)); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCorruptRoundTripChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	want := saveDB(t, path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f dbFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Checksum == "" {
		t.Fatal("saved database carries no checksum")
	}

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := want.Get("fib"), got.Get("fib")
	if a.Instrs != b.Instrs || a.Taken[0] != b.Taken[0] || a.Total[1] != b.Total[1] {
		t.Fatalf("round-trip lost counts: %+v vs %+v", a, b)
	}
}

func TestCorruptTruncatedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	saveDB(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file loaded with err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptBitFlippedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	saveDB(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one counter while keeping the JSON valid and the profile
	// self-consistent: the checksum catches what validation cannot.
	// The merged fib profile counts 1234+9876 instructions.
	edited := strings.Replace(string(data), "11110", "11111", 1)
	if edited == string(data) {
		t.Fatal("test edit found nothing to change")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped file loaded with err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptInconsistentCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	// Hand-built file with taken > total and no checksum: structural
	// validation must still reject it.
	f := dbFile{Version: dbVersion, Profiles: []*Profile{
		mkProfile("p", "d", []uint64{9}, []uint64{1}, 0),
	}}
	data, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inconsistent profile loaded with err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptLegacyChecksumlessFileLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	f := dbFile{Version: dbVersion, Profiles: []*Profile{
		mkProfile("p", "d", []uint64{1}, []uint64{2}, 7),
	}}
	data, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatalf("pre-checksum database rejected: %v", err)
	}
	if p := db.Get("p"); p == nil || p.Instrs != 7 {
		t.Fatalf("legacy load lost data: %+v", p)
	}
}

func TestCorruptMissingFilePassesThrough(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("missing file misreported as corrupt")
	}
}

// TestTornSaveDetectedByLoad: a torn-write injector simulates the
// legacy non-atomic writer crashing mid-write; the save "succeeds"
// but Load refuses the remains as corrupt.
func TestTornSaveDetectedByLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	db := NewDB()
	if err := db.Add(mkProfile("p", "d", []uint64{1, 2, 3}, []uint64{4, 5, 6}, 100)); err != nil {
		t.Fatal(err)
	}
	db.SetFaults(faults.NewSet(11, faults.Rule{Stage: faults.DBSave, Kind: faults.TornWrite, Nth: 1}))
	if err := db.Save(path); err != nil {
		t.Fatalf("torn save surfaced an error: %v", err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file loaded with err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptSaveFaultLeavesOldFileIntact: an injected save error
// fires before any byte is written, so the previous database survives
// — the crash-consistency contract.
func TestCorruptSaveFaultLeavesOldFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	saveDB(t, path)

	db2 := NewDB()
	if err := db2.Add(mkProfile("other", "d", []uint64{1}, []uint64{1}, 1)); err != nil {
		t.Fatal(err)
	}
	db2.SetFaults(faults.NewSet(1, faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Nth: 1}))
	if err := db2.Save(path); !faults.Is(err) {
		t.Fatalf("injected save fault returned %v", err)
	}
	old, err := Load(path)
	if err != nil {
		t.Fatalf("old database damaged by failed save: %v", err)
	}
	if old.Get("fib") == nil || old.Get("other") != nil {
		t.Fatalf("old database contents changed: programs %v", old.Programs())
	}
}

// TestCorruptLoadFaultInjection: load-side injectors surface as
// injected errors, distinct from corruption.
func TestCorruptLoadFaultInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	saveDB(t, path)
	fs := faults.NewSet(1, faults.Rule{Stage: faults.DBLoad, Kind: faults.Error, Nth: 1})
	if _, err := LoadWith(path, fs); !faults.Is(err) {
		t.Fatalf("injected load fault returned %v", err)
	}
	if _, err := LoadWith(path, fs); err != nil {
		t.Fatalf("second load (no rule) failed: %v", err)
	}
}

// TestCorruptSaveLeavesNoTempDroppings: successful and failed saves
// alike clean up their temporary files.
func TestCorruptSaveLeavesNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	saveDB(t, filepath.Join(dir, "db.json"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestVerifyFile: the audit entry point agrees with Load on every
// verdict — clean file with a count, ErrCorrupt on a flipped counter,
// fs.ErrNotExist passed through — without building a DB.
func TestVerifyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	saveDB(t, path)

	n, walSeq, err := VerifyFile(path)
	if err != nil || n != 1 {
		t.Fatalf("VerifyFile(clean) = %d, %v; want 1 profile", n, err)
	}
	if walSeq != 0 {
		t.Fatalf("VerifyFile(clean) walSeq = %d, want 0 (no journal checkpointed)", walSeq)
	}

	if _, _, err := VerifyFile(filepath.Join(t.TempDir(), "absent.json")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("VerifyFile(missing) = %v, want fs.ErrNotExist", err)
	}

	// Flip one counter digit, keeping the JSON valid and the profile
	// self-consistent: only the recomputed checksum can notice.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), "11110", "11111", 1)
	if edited == string(data) {
		t.Fatal("test edit found nothing to change")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyFile(bit-flipped) = %v, want ErrCorrupt", err)
	}
}

// TestCorruptNullProfileEntry is the regression test for a hardening
// fix surfaced by FuzzDBLoad: a hand-edited or corrupted file whose
// profile list contains null (or a profile with no program name) used
// to nil-deref inside Load; it must report ErrCorrupt instead.
func TestCorruptNullProfileEntry(t *testing.T) {
	dir := t.TempDir()
	for _, body := range []string{
		`{"version":1,"profiles":[null]}`,
		`{"version":1,"profiles":[{"Taken":[1],"Total":[2]}]}`,
	} {
		path := filepath.Join(dir, "db.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Load(%s) = %v, want ErrCorrupt", body, err)
		}
	}
}

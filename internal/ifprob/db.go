package ifprob

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"branchprof/internal/faults"
	"branchprof/internal/flock"
)

// DB is the accumulating branch-count database. The paper's
// instrumented binaries added each run's counters into a per-program
// database; a utility later fed the accumulated counts back into the
// source as directives. DB is safe for concurrent use.
//
// DB is the storage primitive, not the storage layer: it owns one
// mutex-guarded profile map and one checksummed file. Everything that
// needs a keyed profile store — the server, the CLI tools — goes
// through internal/store, whose drivers compose DBs (memstore wraps
// one; shardstore holds one per shard). New consumers should program
// against store.Store, not DB.
type DB struct {
	mu       sync.Mutex
	profiles map[string]*Profile // keyed by program name
	walSeq   uint64              // write-ahead log watermark (see SetWalSeq)
	faults   *faults.Set         // chaos-test injectors; nil in production
}

// SetFaults installs fault injectors consulted at Save (stage
// faults.DBSave). Chaos tests only; a nil set injects nothing.
func (db *DB) SetFaults(fs *faults.Set) {
	db.mu.Lock()
	db.faults = fs
	db.mu.Unlock()
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{profiles: make(map[string]*Profile)}
}

// Add accumulates a run's profile into the database.
func (db *DB) Add(p *Profile) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	cur, ok := db.profiles[p.Program]
	if !ok {
		db.profiles[p.Program] = p.Clone()
		return nil
	}
	return cur.Merge(p)
}

// Put installs a copy of p under p.Program, replacing whatever was
// accumulated there. Add is the accumulating path; Put exists for
// callers that own the full replacement state — the replication
// layer installing a peer's component wholesale.
func (db *DB) Put(p *Profile) {
	db.mu.Lock()
	db.profiles[p.Program] = p.Clone()
	db.mu.Unlock()
}

// Remove deletes program's accumulated profile, reporting whether it
// was present.
func (db *DB) Remove(program string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.profiles[program]
	delete(db.profiles, program)
	return ok
}

// Get returns a copy of the accumulated profile for program, or nil.
func (db *DB) Get(program string) *Profile {
	db.mu.Lock()
	defer db.mu.Unlock()
	if p, ok := db.profiles[program]; ok {
		return p.Clone()
	}
	return nil
}

// WalSeq returns the database's write-ahead log watermark: the highest
// journal sequence number whose effect this DB's profiles include.
// Zero means no journal is in use (or nothing journaled has applied).
func (db *DB) WalSeq() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.walSeq
}

// SetWalSeq records the write-ahead log watermark. The store/wal layer
// calls it under the same critical section that applies the journaled
// mutation, and Save snapshots it together with the profiles — the
// file always holds a (data, watermark) pair that is consistent, which
// is what makes journal replay idempotent: Profile.Merge adds
// counters, so replaying a record the file already includes would
// double-count, and the embedded watermark is how replay knows.
func (db *DB) SetWalSeq(seq uint64) {
	db.mu.Lock()
	if seq > db.walSeq {
		db.walSeq = seq
	}
	db.mu.Unlock()
}

// Programs lists the programs with accumulated profiles, sorted.
func (db *DB) Programs() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.profiles))
	for n := range db.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// dbFile is the serialized database layout. Checksum covers the
// canonical encoding of Profiles (plus the WAL watermark when one is
// set), so Load can tell a torn or bit-flipped file from a healthy
// one. WalSeq rides in the same file as the profiles it describes —
// the pair is written atomically, which closes the crash window a
// separate checkpoint file would leave open.
type dbFile struct {
	Version  int        `json:"version"`
	Checksum string     `json:"checksum,omitempty"`
	WalSeq   uint64     `json:"wal_seq,omitempty"`
	Profiles []*Profile `json:"profiles"`
}

const dbVersion = 1

// ErrCorrupt marks a database file whose contents cannot be trusted:
// a torn write, a failed checksum, or inconsistent counters. Version
// mismatches are a separate, unwrapped error — an old-format file is
// not corrupt.
var ErrCorrupt = errors.New("ifprob: corrupt database")

// profilesChecksum is the payload checksum Save records and Load
// verifies: the hex SHA-256 of the compact JSON encoding of the
// profile list, with the WAL watermark appended when non-zero so a
// bit-flip in wal_seq is caught too. Files without a watermark hash
// exactly what they always did, so every pre-WAL database still
// verifies.
func profilesChecksum(profiles []*Profile, walSeq uint64) (string, error) {
	data, err := json.Marshal(profiles)
	if err != nil {
		return "", err
	}
	if walSeq != 0 {
		data = append(data, fmt.Sprintf("|walseq=%d", walSeq)...)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Save writes the database to path crash-consistently: the JSON goes
// to a temp file in the same directory, is fsynced, and is renamed
// over path, so a crash at any point leaves either the old database
// or the new one — never a truncated mixture. The payload checksum
// lets Load detect the remaining failure mode, a medium that tears
// the write after rename (see ErrCorrupt).
func (db *DB) Save(path string) error {
	db.mu.Lock()
	f := dbFile{Version: dbVersion, WalSeq: db.walSeq}
	for _, name := range db.programsLocked() {
		// Deep-copy under the lock: a concurrent Add/Merge mutates the
		// live slices in place, and the checksum and marshal below run
		// unlocked in two passes — a snapshot that aliased them could
		// persist a checksum-mismatched file.
		f.Profiles = append(f.Profiles, db.profiles[name].Clone())
	}
	fs := db.faults
	db.mu.Unlock()
	sum, err := profilesChecksum(f.Profiles, f.WalSeq)
	if err != nil {
		return fmt.Errorf("ifprob: encoding database: %w", err)
	}
	f.Checksum = sum
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("ifprob: encoding database: %w", err)
	}
	// Serialize writers across processes: the rename below is atomic,
	// but two concurrent savers could still race temp-file creation and
	// last-writer-wins each other mid-burst. The advisory lock (a
	// sibling `<path>.lock` file, see docs/ENGINE.md) makes saves to
	// one path strictly sequential.
	lock, err := flock.Acquire(flock.DBLockPath(path))
	if err != nil {
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	defer lock.Unlock()
	if err := fs.Fire(faults.DBSave, path); err != nil {
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	if n := fs.Torn(faults.DBSave, path, len(data)); n < len(data) {
		// A torn-write rule simulates the legacy non-atomic writer
		// crashing mid-write: the truncated bytes land at the final
		// path and the caller sees success — Load must catch it.
		return os.WriteFile(path, data[:n], 0o644)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ifprobdb-*.tmp")
	if err != nil {
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ifprob: saving database: %w", err)
	}
	return nil
}

func (db *DB) programsLocked() []string {
	names := make([]string, 0, len(db.profiles))
	for n := range db.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load reads a database previously written with Save. A file that
// fails to decode, fails its checksum, or carries inconsistent
// counters returns an error wrapping ErrCorrupt; a missing file
// passes the os error through (errors.Is(err, fs.ErrNotExist) holds).
// Databases written before checksums existed load normally.
func Load(path string) (*DB, error) {
	return LoadWith(path, nil)
}

// LoadWith is Load with fault injectors consulted at stage
// faults.DBLoad (chaos tests only; nil injects nothing).
func LoadWith(path string, fs *faults.Set) (*DB, error) {
	if err := fs.Fire(faults.DBLoad, path); err != nil {
		return nil, fmt.Errorf("ifprob: loading database %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	profiles, walSeq, err := decodeVerified(path, data)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	db.walSeq = walSeq
	for _, p := range profiles {
		db.profiles[p.Program] = p
	}
	return db, nil
}

// decodeVerified decodes a database file's bytes and runs every
// integrity check Load enforces: JSON shape, format version, payload
// checksum, and per-profile counter consistency. Corruption wraps
// ErrCorrupt; a version mismatch stays a plain error (an old-format
// file is not corrupt).
func decodeVerified(path string, data []byte) ([]*Profile, uint64, error) {
	var f dbFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, 0, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if f.Version != dbVersion {
		return nil, 0, fmt.Errorf("ifprob: database %s has version %d, want %d", path, f.Version, dbVersion)
	}
	if f.Checksum != "" {
		sum, err := profilesChecksum(f.Profiles, f.WalSeq)
		if err != nil {
			return nil, 0, fmt.Errorf("ifprob: decoding database %s: %w", path, err)
		}
		if sum != f.Checksum {
			return nil, 0, fmt.Errorf("%w: %s: checksum mismatch (have %s, want %s)", ErrCorrupt, path, sum, f.Checksum)
		}
	}
	for _, p := range f.Profiles {
		if p == nil || p.Program == "" {
			// A null entry (or one with no program name to key on) can
			// only come from a hand-edited or corrupted file; surfaced
			// by FuzzDBLoad.
			return nil, 0, fmt.Errorf("%w: %s: null profile entry", ErrCorrupt, path)
		}
		if err := p.CheckConsistent(); err != nil {
			return nil, 0, fmt.Errorf("%w: %s: inconsistent profile: %v", ErrCorrupt, path, err)
		}
	}
	return f.Profiles, f.WalSeq, nil
}

// VerifyFile re-reads a database file and recomputes every integrity
// check — checksum included — without building a DB, so an operator
// can audit stores far larger than memory-merging them would allow
// (ifprobdb -verify). It returns the number of profiles the file
// holds and the write-ahead log watermark embedded in it (zero when
// no journal ever checkpointed into the file), so an audit can
// cross-check the checkpoint against the journal itself; the error
// reports the first problem found (wrapping ErrCorrupt for
// untrustworthy contents, passing fs.ErrNotExist through for a
// missing file).
func VerifyFile(path string) (int, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	profiles, walSeq, err := decodeVerified(path, data)
	if err != nil {
		return 0, 0, err
	}
	return len(profiles), walSeq, nil
}

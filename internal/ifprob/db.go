package ifprob

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// DB is the accumulating branch-count database. The paper's
// instrumented binaries added each run's counters into a per-program
// database; a utility later fed the accumulated counts back into the
// source as directives. DB is safe for concurrent use.
type DB struct {
	mu       sync.Mutex
	profiles map[string]*Profile // keyed by program name
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{profiles: make(map[string]*Profile)}
}

// Add accumulates a run's profile into the database.
func (db *DB) Add(p *Profile) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	cur, ok := db.profiles[p.Program]
	if !ok {
		db.profiles[p.Program] = p.Clone()
		return nil
	}
	return cur.Merge(p)
}

// Get returns a copy of the accumulated profile for program, or nil.
func (db *DB) Get(program string) *Profile {
	db.mu.Lock()
	defer db.mu.Unlock()
	if p, ok := db.profiles[program]; ok {
		return p.Clone()
	}
	return nil
}

// Programs lists the programs with accumulated profiles, sorted.
func (db *DB) Programs() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.profiles))
	for n := range db.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// dbFile is the serialized database layout.
type dbFile struct {
	Version  int        `json:"version"`
	Profiles []*Profile `json:"profiles"`
}

const dbVersion = 1

// Save writes the database to path as JSON.
func (db *DB) Save(path string) error {
	db.mu.Lock()
	f := dbFile{Version: dbVersion}
	for _, name := range db.programsLocked() {
		f.Profiles = append(f.Profiles, db.profiles[name])
	}
	db.mu.Unlock()
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("ifprob: encoding database: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

func (db *DB) programsLocked() []string {
	names := make([]string, 0, len(db.profiles))
	for n := range db.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load reads a database previously written with Save.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f dbFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("ifprob: decoding database %s: %w", path, err)
	}
	if f.Version != dbVersion {
		return nil, fmt.Errorf("ifprob: database %s has version %d, want %d", path, f.Version, dbVersion)
	}
	db := NewDB()
	for _, p := range f.Profiles {
		if err := p.CheckConsistent(); err != nil {
			return nil, fmt.Errorf("ifprob: database %s: corrupt profile: %w", path, err)
		}
		db.profiles[p.Program] = p
	}
	return db, nil
}

package ifprob

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDBLoad feeds arbitrary bytes to the database loader. The
// contract for a file of unknown provenance is: a healthy database
// loads, anything else returns an error (ErrCorrupt for untrustworthy
// contents) — never a panic. A database that loads must save and
// reload unchanged.
func FuzzDBLoad(f *testing.F) {
	f.Add([]byte(`{"version":1,"profiles":[]}`))
	f.Add([]byte(`{"version":1,"profiles":[{"Program":"p","Dataset":"d","Taken":[1],"Total":[2],"Instrs":10}]}`))
	f.Add([]byte(`{"version":1,"profiles":[null]}`))
	f.Add([]byte(`{"version":1,"profiles":[{"Program":"p","Taken":[3],"Total":[2]}]}`))
	f.Add([]byte(`{"version":2,"profiles":[]}`))
	f.Add([]byte(`{"version":1,"checksum":"deadbeef","profiles":[]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "db.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Load(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("spurious not-exist for present file: %v", err)
			}
			return
		}
		// A database the loader accepted must round-trip.
		out := filepath.Join(dir, "out.json")
		if err := db.Save(out); err != nil {
			t.Fatalf("accepted database fails to save: %v", err)
		}
		again, err := Load(out)
		if err != nil {
			t.Fatalf("saved database fails to reload: %v", err)
		}
		progs := db.Programs()
		if got := again.Programs(); len(got) != len(progs) {
			t.Fatalf("round trip changed program count: %d vs %d", len(got), len(progs))
		}
		for _, name := range progs {
			a, b := db.Get(name), again.Get(name)
			if a.Executed() != b.Executed() || a.TakenCount() != b.TakenCount() {
				t.Fatalf("round trip changed counters for %s", name)
			}
		}
	})
}

// Package asm assembles a textual form of isa programs — the
// hand-written counterpart to the MF compiler's output, used by tools
// and tests that need precise control over the instruction stream.
//
// Syntax (one item per line, ';' comments):
//
//	program NAME
//	imem N            fmem N
//	idata ADDR: v v v ...
//	fdata ADDR: v v v ...
//	func NAME (int,float,...) int|float|void
//	    ldi   r0, 42
//	    ldf   f0, 1.5
//	    add   r2, r0, r1          ; dest first
//	    ld    r1, 8(r0)           ; int load
//	    st    8(r0), r1
//	    fld   f1, 0(r0)
//	    fst   0(r0), f1
//	    cvtif f0, r0              ; int->float
//	    cvtfi r0, f0
//	label:
//	    br    r0, label [back depth=1 label=while]
//	    jmp   label
//	    call  callee, rA, fB, rC  ; int-arg base, float-arg base, result ('-' if none)
//	    icall r0, r1, r2          ; fn index reg, int-arg base, result
//	    ret   r0                  ; or bare "ret" in void functions
//	    getc  r0
//	    putc  r0
//	    halt  r0
//	    sqrt  f1, f0              ; and sin/cos/exp/log/fabs/floor
//	    pow   f2, f0, f1
//
// Branch sites are numbered automatically in source order; the
// bracketed attributes set the site's loop metadata for the heuristic
// predictors. Call targets resolve by name after the whole unit is
// read, so forward calls and recursion assemble.
//
// Format is the inverse: it renders any isa.Program (including the MF
// compiler's output) in this syntax such that reassembling reproduces
// the program instruction for instruction — the round-trip the tests
// use to cross-validate compiler, formatter and assembler.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"branchprof/internal/isa"
)

// Error is an assembly error with its line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	prog    *isa.Program
	curFunc *isa.Func
	labels  map[string]int   // label -> pc in current function
	patches map[string][]int // label -> instruction indices to patch
	line    int
	// calls records call sites for name resolution after all
	// functions are declared (so recursion and forward calls work).
	calls []callPatch
}

type callPatch struct {
	fn   int // function index owning the call
	pc   int
	name string
	line int
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses the textual program.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{prog: &isa.Program{Main: -1}}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return nil, err
		}
	}
	if err := a.endFunc(); err != nil {
		return nil, err
	}
	for _, cp := range a.calls {
		idx := a.prog.FuncIndex(cp.name)
		if idx < 0 {
			return nil, &Error{Line: cp.line, Msg: fmt.Sprintf("call to unknown function %q", cp.name)}
		}
		a.prog.Funcs[cp.fn].Code[cp.pc].Target = int32(idx)
	}
	if a.prog.Main < 0 {
		a.prog.Main = a.prog.FuncIndex("main")
		if a.prog.Main < 0 {
			return nil, fmt.Errorf("asm: no main function")
		}
	}
	if a.prog.IntMem == 0 {
		a.prog.IntMem = 1
	}
	if a.prog.FloatMem == 0 {
		a.prog.FloatMem = 1
	}
	if err := a.prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return a.prog, nil
}

func (a *assembler) statement(line string) error {
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
		if a.curFunc == nil {
			return a.errf("label outside function")
		}
		name := strings.TrimSuffix(line, ":")
		if _, dup := a.labels[name]; dup {
			return a.errf("duplicate label %q", name)
		}
		a.labels[name] = len(a.curFunc.Code)
		return nil
	}
	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch op {
	case "program":
		a.prog.Source = rest
		return nil
	case "imem", "fmem":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return a.errf("bad %s size %q", op, rest)
		}
		if op == "imem" {
			a.prog.IntMem = n
		} else {
			a.prog.FloatMem = n
		}
		return nil
	case "idata", "fdata":
		return a.data(op, rest)
	case "func":
		return a.funcDecl(rest)
	}
	if a.curFunc == nil {
		return a.errf("instruction %q outside function", line)
	}
	return a.instr(op, rest)
}

func (a *assembler) data(kind, rest string) error {
	addrStr, vals, ok := strings.Cut(rest, ":")
	if !ok {
		return a.errf("%s needs ADDR: values", kind)
	}
	addr, err := strconv.Atoi(strings.TrimSpace(addrStr))
	if err != nil || addr < 0 {
		return a.errf("bad %s address %q", kind, addrStr)
	}
	for _, f := range strings.Fields(vals) {
		if kind == "idata" {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return a.errf("bad int datum %q", f)
			}
			for len(a.prog.IntData) <= addr {
				a.prog.IntData = append(a.prog.IntData, 0)
			}
			a.prog.IntData[addr] = v
		} else {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return a.errf("bad float datum %q", f)
			}
			for len(a.prog.FloatData) <= addr {
				a.prog.FloatData = append(a.prog.FloatData, 0)
			}
			a.prog.FloatData[addr] = v
		}
		addr++
	}
	if len(a.prog.IntData) > a.prog.IntMem {
		a.prog.IntMem = len(a.prog.IntData)
	}
	if len(a.prog.FloatData) > a.prog.FloatMem {
		a.prog.FloatMem = len(a.prog.FloatData)
	}
	return nil
}

// funcDecl parses: NAME (types) rettype
func (a *assembler) funcDecl(rest string) error {
	if err := a.endFunc(); err != nil {
		return err
	}
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.IndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return a.errf("func needs a parameter list: %q", rest)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return a.errf("func needs a name")
	}
	if a.prog.FuncIndex(name) >= 0 {
		return a.errf("duplicate function %q", name)
	}
	f := isa.Func{Name: name}
	params := strings.TrimSpace(rest[open+1 : closeIdx])
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			switch strings.TrimSpace(p) {
			case "int":
				f.FParams = append(f.FParams, false)
			case "float":
				f.FParams = append(f.FParams, true)
			default:
				return a.errf("bad parameter type %q", p)
			}
		}
	}
	f.NumParams = len(f.FParams)
	switch ret := strings.TrimSpace(rest[closeIdx+1:]); ret {
	case "int", "":
		f.Kind = isa.FuncInt
	case "float":
		f.Kind = isa.FuncFloat
	case "void":
		f.Kind = isa.FuncVoid
	default:
		return a.errf("bad return type %q", ret)
	}
	a.prog.Funcs = append(a.prog.Funcs, f)
	a.curFunc = &a.prog.Funcs[len(a.prog.Funcs)-1]
	a.labels = make(map[string]int)
	a.patches = make(map[string][]int)
	return nil
}

// endFunc resolves labels and finalizes register frame sizes.
func (a *assembler) endFunc() error {
	if a.curFunc == nil {
		return nil
	}
	f := a.curFunc
	for label, idxs := range a.patches {
		pc, ok := a.labels[label]
		if !ok {
			return a.errf("undefined label %q in %s", label, f.Name)
		}
		for _, idx := range idxs {
			f.Code[idx].Target = int32(pc)
		}
	}
	// Frame sizes: highest register mentioned + 1, at least the params.
	ni, nf := 0, 0
	for _, p := range f.FParams {
		if p {
			nf++
		} else {
			ni++
		}
	}
	for _, in := range f.Code {
		hi := func(r int32, cur int) int {
			if int(r)+1 > cur {
				return int(r) + 1
			}
			return cur
		}
		switch in.Op {
		case isa.OpLdf, isa.OpFMov, isa.OpFNeg, isa.OpSqrt, isa.OpSin, isa.OpCos,
			isa.OpExp, isa.OpLog, isa.OpFAbs, isa.OpFloor:
			nf = hi(in.C, nf)
			nf = hi(in.A, nf)
		case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpPow:
			nf = hi(in.C, hi(in.A, hi(in.B, nf)))
		case isa.OpFSlt, isa.OpFSle, isa.OpFSeq, isa.OpFSne:
			ni = hi(in.C, ni)
			nf = hi(in.A, hi(in.B, nf))
		case isa.OpCvtIF:
			nf = hi(in.C, nf)
			ni = hi(in.A, ni)
		case isa.OpCvtFI:
			ni = hi(in.C, ni)
			nf = hi(in.A, nf)
		case isa.OpFLd:
			nf = hi(in.C, nf)
			ni = hi(in.A, ni)
		case isa.OpFSt:
			ni = hi(in.A, ni)
			nf = hi(in.B, nf)
		case isa.OpRet:
			if f.Kind == isa.FuncFloat {
				nf = hi(in.A, nf)
			} else if f.Kind == isa.FuncInt {
				ni = hi(in.A, ni)
			}
		case isa.OpCall:
			ni = hi(in.A, ni)
			nf = hi(in.B, nf)
			if in.C >= 0 {
				// Result register file depends on the callee, which may
				// not be assembled yet; reserve in both.
				ni = hi(in.C, ni)
				nf = hi(in.C, nf)
			}
		case isa.OpJmp, isa.OpNop:
		default:
			ni = hi(in.C, hi(in.A, hi(in.B, ni)))
		}
	}
	f.NumIRegs = ni
	f.NumFRegs = nf
	a.curFunc = nil
	return nil
}

// ---- instruction parsing ----

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for i := 0; i < 64; i++ {
		if op := isa.Op(i); op.Valid() {
			m[op.String()] = op
		}
	}
	return m
}()

func (a *assembler) reg(s string, file byte) (int32, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != file {
		return 0, a.errf("expected %c-register, got %q", file, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 1<<20 {
		return 0, a.errf("bad register %q", s)
	}
	return int32(n), nil
}

// memOperand parses "IMM(rN)".
func (a *assembler) memOperand(s string) (base int32, off int64, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("expected IMM(reg), got %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = strconv.ParseInt(offStr, 0, 64)
	if err != nil {
		return 0, 0, a.errf("bad offset %q", offStr)
	}
	base, err = a.reg(s[open+1:len(s)-1], 'r')
	return base, off, err
}

func (a *assembler) emit(in isa.Instr) {
	if in.Op != isa.OpBr {
		in.Site = -1
	}
	a.curFunc.Code = append(a.curFunc.Code, in)
}

func (a *assembler) target(label string, at int) {
	if pc, ok := a.labels[label]; ok {
		a.curFunc.Code[at].Target = int32(pc)
		return
	}
	a.patches[label] = append(a.patches[label], at)
}

func (a *assembler) instr(opName, rest string) error {
	op, ok := opByName[opName]
	if !ok {
		return a.errf("unknown operation %q", opName)
	}
	args := splitArgs(rest)
	n := len(args)
	need := func(k int) error {
		if n != k {
			return a.errf("%s takes %d operands, got %d", opName, k, n)
		}
		return nil
	}
	switch op {
	case isa.OpNop:
		if err := need(0); err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op})
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSle,
		isa.OpSeq, isa.OpSne:
		if err := need(3); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'r')
		if err != nil {
			return err
		}
		y, err := a.reg(args[2], 'r')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x, B: y})
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpPow:
		if err := need(3); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'f')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'f')
		if err != nil {
			return err
		}
		y, err := a.reg(args[2], 'f')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x, B: y})
	case isa.OpFSlt, isa.OpFSle, isa.OpFSeq, isa.OpFSne:
		if err := need(3); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'f')
		if err != nil {
			return err
		}
		y, err := a.reg(args[2], 'f')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x, B: y})
	case isa.OpNeg, isa.OpNot, isa.OpMov:
		if err := need(2); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'r')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x})
	case isa.OpFNeg, isa.OpFMov, isa.OpSqrt, isa.OpSin, isa.OpCos, isa.OpExp,
		isa.OpLog, isa.OpFAbs, isa.OpFloor:
		if err := need(2); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'f')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'f')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x})
	case isa.OpCvtIF:
		if err := need(2); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'f')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'r')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x})
	case isa.OpCvtFI:
		if err := need(2); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		x, err := a.reg(args[1], 'f')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: x})
	case isa.OpLdi:
		if err := need(2); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return a.errf("bad immediate %q", args[1])
		}
		a.emit(isa.Instr{Op: op, C: c, Imm: v})
	case isa.OpLdf:
		if err := need(2); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'f')
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return a.errf("bad float immediate %q", args[1])
		}
		a.emit(isa.Instr{Op: op, C: c, FImm: v})
	case isa.OpLd, isa.OpFLd:
		if err := need(2); err != nil {
			return err
		}
		file := byte('r')
		if op == isa.OpFLd {
			file = 'f'
		}
		c, err := a.reg(args[0], file)
		if err != nil {
			return err
		}
		base, off, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c, A: base, Imm: off})
	case isa.OpSt, isa.OpFSt:
		if err := need(2); err != nil {
			return err
		}
		base, off, err := a.memOperand(args[0])
		if err != nil {
			return err
		}
		file := byte('r')
		if op == isa.OpFSt {
			file = 'f'
		}
		v, err := a.reg(args[1], file)
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, A: base, B: v, Imm: off})
	case isa.OpBr:
		return a.branch(args)
	case isa.OpJmp:
		if err := need(1); err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, Site: -1})
		a.target(args[0], len(a.curFunc.Code)-1)
	case isa.OpCall:
		if err := need(4); err != nil {
			return err
		}
		ia, err := a.reg(args[1], 'r')
		if err != nil {
			return err
		}
		fa, err := a.reg(args[2], 'f')
		if err != nil {
			return err
		}
		res := int32(-1)
		if args[3] != "-" {
			r, err := a.reg(args[3], 'r')
			if err != nil {
				r2, err2 := a.reg(args[3], 'f')
				if err2 != nil {
					return err
				}
				r = r2
			}
			res = r
		}
		// Callee by name, resolved after all functions are declared so
		// forward calls and recursion assemble.
		a.emit(isa.Instr{Op: op, A: ia, B: fa, C: res, Target: -1})
		a.calls = append(a.calls, callPatch{
			fn:   len(a.prog.Funcs) - 1,
			pc:   len(a.curFunc.Code) - 1,
			name: args[0],
			line: a.line,
		})
	case isa.OpICall:
		if err := need(3); err != nil {
			return err
		}
		fp, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		base, err := a.reg(args[1], 'r')
		if err != nil {
			return err
		}
		res, err := a.reg(args[2], 'r')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, A: fp, B: base, C: res})
	case isa.OpRet:
		if n == 0 {
			a.emit(isa.Instr{Op: op})
			return nil
		}
		if err := need(1); err != nil {
			return err
		}
		file := byte('r')
		if a.curFunc.Kind == isa.FuncFloat {
			file = 'f'
		}
		r, err := a.reg(args[0], file)
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, A: r})
	case isa.OpGetc:
		if err := need(1); err != nil {
			return err
		}
		c, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, C: c})
	case isa.OpPutc, isa.OpHalt:
		if err := need(1); err != nil {
			return err
		}
		r, err := a.reg(args[0], 'r')
		if err != nil {
			return err
		}
		a.emit(isa.Instr{Op: op, A: r})
	default:
		return a.errf("operation %q not supported in assembly", opName)
	}
	return nil
}

// branch parses: rCOND, label [attrs]
func (a *assembler) branch(args []string) error {
	if len(args) < 2 {
		return a.errf("br takes a register and a label")
	}
	cond, err := a.reg(args[0], 'r')
	if err != nil {
		return err
	}
	labelAndAttrs := strings.Join(args[1:], ",")
	label := labelAndAttrs
	site := isa.BranchSite{ID: len(a.prog.Sites), Func: a.curFunc.Name, Line: a.line, Label: "br"}
	if idx := strings.IndexByte(labelAndAttrs, '['); idx >= 0 {
		attrs := strings.TrimSuffix(strings.TrimSpace(labelAndAttrs[idx+1:]), "]")
		label = strings.TrimSpace(labelAndAttrs[:idx])
		for _, f := range strings.Fields(strings.ReplaceAll(attrs, ",", " ")) {
			switch {
			case f == "back":
				site.LoopBack = true
			case strings.HasPrefix(f, "depth="):
				d, err := strconv.Atoi(f[6:])
				if err != nil {
					return a.errf("bad depth attribute %q", f)
				}
				site.LoopDepth = d
			case strings.HasPrefix(f, "label="):
				site.Label = f[6:]
			default:
				return a.errf("unknown branch attribute %q", f)
			}
		}
	}
	label = strings.TrimSpace(label)
	a.prog.Sites = append(a.prog.Sites, site)
	a.curFunc.Code = append(a.curFunc.Code, isa.Instr{Op: isa.OpBr, A: cond, Site: int32(site.ID)})
	a.target(label, len(a.curFunc.Code)-1)
	return nil
}

// splitArgs splits on commas outside parentheses/brackets.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

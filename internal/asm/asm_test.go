package asm

import (
	"strings"
	"testing"

	"branchprof/internal/vm"
)

func TestAssembleLoop(t *testing.T) {
	src := `
program looper
imem 8

func main () int
    ldi  r0, 0        ; i
    ldi  r1, 10       ; n
    ldi  r2, 1        ; one
    jmp  test
body:
    add  r0, r0, r2
test:
    slt  r3, r0, r1
    br   r3, body [back depth=1 label=while]
    ret  r0
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Source != "looper" {
		t.Errorf("source = %q", prog.Source)
	}
	if len(prog.Sites) != 1 || !prog.Sites[0].LoopBack || prog.Sites[0].LoopDepth != 1 {
		t.Errorf("sites = %+v", prog.Sites)
	}
	res, err := vm.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 10 {
		t.Errorf("exit = %d, want 10", res.ExitCode)
	}
	if res.SiteTaken[0] != 10 || res.SiteTotal[0] != 11 {
		t.Errorf("branch counts = %d/%d", res.SiteTaken[0], res.SiteTotal[0])
	}
}

func TestAssembleCallsAndFloats(t *testing.T) {
	src := `
program callf

func scale (float, int) float
    cvtif f1, r0
    fmul  f2, f0, f1
    ret   f2

func main () int
    ldf   f0, 2.5
    ldi   r0, 4
    call  scale, r0, f0, f3
    cvtfi r1, f3
    ret   r1
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 10 {
		t.Errorf("exit = %d, want 10 (2.5*4)", res.ExitCode)
	}
	if res.DirectCalls != 1 {
		t.Errorf("calls = %d", res.DirectCalls)
	}
}

func TestAssembleMemoryAndData(t *testing.T) {
	src := `
program mem
imem 16
idata 4: 100 200 0x1f
fdata 0: 1.5 2.5

func main () int
    ldi  r0, 0
    ld   r1, 4(r0)
    ld   r2, 5(r0)
    add  r3, r1, r2
    fld  f0, 0(r0)
    fld  f1, 1(r0)
    fadd f2, f0, f1
    cvtfi r4, f2
    add  r3, r3, r4
    st   7(r0), r3
    ld   r5, 7(r0)
    ret  r5
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 304 {
		t.Errorf("exit = %d, want 304", res.ExitCode)
	}
}

func TestAssembleIO(t *testing.T) {
	src := `
program echoupper

func main () int
    ldi  r2, 0
    ldi  r3, 32
loop:
    getc r0
    slt  r1, r0, r2
    br   r1, done [label=eof]
    sub  r0, r0, r3
    putc r0
    jmp  loop
done:
    ret  r2
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, []byte("abc"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "ABC" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no main", "func f () int\n ret r0\n", "no main"},
		{"bad op", "func main () int\n frobnicate r0\n ret r0\n", "unknown operation"},
		{"bad reg", "func main () int\n ldi x0, 3\n ret r0\n", "register"},
		{"undefined label", "func main () int\n jmp nowhere\n ret r0\n", "undefined label"},
		{"duplicate label", "func main () int\nl:\nl:\n ret r0\n", "duplicate label"},
		{"instr outside func", "ldi r0, 1\n", "outside function"},
		{"unknown callee", "func main () int\n call f, r0, f0, r1\n ret r0\n", "unknown function"},
		{"operand count", "func main () int\n add r0, r1\n ret r0\n", "operands"},
		{"bad attr", "func main () int\nl:\n ldi r0, 1\n br r0, l [bogus]\n ret r0\n", "attribute"},
		{"duplicate func", "func main () int\n ret r0\nfunc main () int\n ret r0\n", "duplicate function"},
		{"bad param type", "func main (string) int\n ret r0\n", "parameter type"},
		{"no trailing control", "func main () int\n ldi r0, 1\n", "control transfer"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestAssembleVoidAndIndirect(t *testing.T) {
	src := `
program ind

func out (int) void
    putc r0
    ret

func main () int
    ldi  r0, 65
    call out, r0, f0, -
    ldi  r1, 0        ; function index of out
    ldi  r2, 66
    mov  r3, r2
    icall r1, r3, r4
    ret  r0
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "AB" {
		t.Errorf("output = %q, want AB", res.Output)
	}
	if res.IndirectCalls != 1 {
		t.Errorf("indirect calls = %d", res.IndirectCalls)
	}
}

package asm

import (
	"bytes"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// TestFormatRoundTripSimple: Format ∘ Assemble preserves code and
// behaviour on a hand-written program.
func TestFormatRoundTripSimple(t *testing.T) {
	src := `
program rt
imem 8
idata 2: 7 9

func helper (int) int
    ldi r1, 3
    add r2, r0, r1
    ret r2

func main () int
    ldi r0, 0
    ld  r1, 2(r0)
    call helper, r1, f0, r2
loop:
    ldi r3, 1
    sub r2, r2, r3
    slt r4, r0, r2
    br  r4, loop [back depth=1 label=while]
    ret r2
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	r1, err := vm.Run(p1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := vm.Run(p2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExitCode != r2.ExitCode || r1.Instrs != r2.Instrs {
		t.Errorf("round trip changed behaviour: exit %d/%d instrs %d/%d",
			r1.ExitCode, r2.ExitCode, r1.Instrs, r2.Instrs)
	}
}

// TestFormatRoundTripWorkloads: every compiled workload survives
// Format -> Assemble with identical code, sites and behaviour —
// recursion, indirect calls, floats, string data and all.
func TestFormatRoundTripWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p1, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			text, err := Format(p1)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := Assemble(text)
			if err != nil {
				t.Fatalf("reassembly failed: %v", err)
			}
			if len(p2.Funcs) != len(p1.Funcs) {
				t.Fatalf("function count %d -> %d", len(p1.Funcs), len(p2.Funcs))
			}
			if len(p2.Sites) != len(p1.Sites) {
				t.Fatalf("site count %d -> %d", len(p1.Sites), len(p2.Sites))
			}
			for i := range p1.Sites {
				s1, s2 := p1.Sites[i], p2.Sites[i]
				if s1.LoopBack != s2.LoopBack || s1.LoopDepth != s2.LoopDepth {
					t.Fatalf("site %d metadata changed: %+v -> %+v", i, s1, s2)
				}
			}
			for fi := range p1.Funcs {
				f1, f2 := &p1.Funcs[fi], &p2.Funcs[fi]
				if len(f1.Code) != len(f2.Code) {
					t.Fatalf("%s: code length %d -> %d", f1.Name, len(f1.Code), len(f2.Code))
				}
				for pc := range f1.Code {
					i1, i2 := f1.Code[pc], f2.Code[pc]
					if i1.Op != i2.Op || i1.A != i2.A || i1.B != i2.B || i1.C != i2.C ||
						i1.Imm != i2.Imm || i1.FImm != i2.FImm || i1.Target != i2.Target ||
						i1.Site != i2.Site {
						t.Fatalf("%s+%d: instruction changed:\n %+v\n %+v", f1.Name, pc, i1, i2)
					}
				}
			}
			// Behaviour on the smallest dataset.
			input := w.Datasets[0].Gen()
			if w.Name == "spice2g6" {
				input = w.Datasets[1].Gen() // circuit2, the short one
			}
			r1, err := vm.Run(p1, input, nil)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := vm.Run(p2, input, nil)
			if err != nil {
				t.Fatal(err)
			}
			if r1.ExitCode != r2.ExitCode || r1.Instrs != r2.Instrs || !bytes.Equal(r1.Output, r2.Output) {
				t.Errorf("behaviour changed: exit %d/%d instrs %d/%d",
					r1.ExitCode, r2.ExitCode, r1.Instrs, r2.Instrs)
			}
		})
	}
}

func TestFormatForwardAndRecursiveCalls(t *testing.T) {
	// main calls a function declared after it; fib recurses.
	src := `
program fwd

func main () int
    ldi r0, 10
    call fib, r0, f0, r1
    ret r1

func fib (int) int
    ldi r1, 2
    slt r2, r0, r1
    br  r2, base [label=if]
    ldi r3, 1
    sub r4, r0, r3
    call fib, r4, f0, r5
    ldi r6, 2
    sub r7, r0, r6
    call fib, r7, f0, r8
    add r9, r5, r8
    ret r9
base:
    ret r0
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 55 {
		t.Errorf("fib(10) = %d, want 55", res.ExitCode)
	}
}

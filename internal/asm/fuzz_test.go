package asm

import (
	"testing"
)

// FuzzAssemble feeds arbitrary text to the assembler. Malformed units
// must come back as *Error values — never a panic — and a unit that
// assembles must survive the Format→Assemble round trip.
func FuzzAssemble(f *testing.F) {
	f.Add("program p\nimem 0 fmem 0\nfunc main () int\n\tldi r0, 7\n\tret r0\n")
	f.Add("program p\nimem 4 fmem 0\nidata 0: 1 2 3 4\nfunc main () int\n\tldi r0, 0\n\tld r1, 0(r0)\n\tret r1\n")
	f.Add("program p\nimem 0 fmem 0\nfunc main () int\nloop:\n\tldi r0, 1\n\tbr r0, loop [back depth=1 label=l]\n\tret r0\n")
	f.Add("program p\nimem 0 fmem 0\nfunc f (int) int\n\tret r0\nfunc main () int\n\tldi r0, 3\n\tcall f, r0, -, r1\n\tret r1\n")
	f.Add("; comment only\n")
	f.Add("program \x00\nimem -1 fmem 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("nil program with nil error")
		}
		text, err := Format(prog)
		if err != nil {
			t.Fatalf("assembled unit does not format: %v", err)
		}
		again, err := Assemble(text)
		if err != nil {
			t.Fatalf("formatted unit does not reassemble: %v\n%s", err, text)
		}
		if len(again.Funcs) != len(prog.Funcs) || len(again.Sites) != len(prog.Sites) {
			t.Fatalf("round trip changed shape: %d/%d funcs, %d/%d sites",
				len(again.Funcs), len(prog.Funcs), len(again.Sites), len(prog.Sites))
		}
	})
}

package asm

import (
	"fmt"
	"strconv"
	"strings"

	"branchprof/internal/isa"
)

// Format renders a program in the assembler's own syntax, such that
// Assemble(Format(p)) reproduces an equivalent program: same code,
// same site metadata, same memory images. Register frame sizes are
// re-derived by the assembler (never smaller than the original's
// usage), and call result registers may widen a frame by one — both
// invisible to execution, which the round-trip tests verify.
func Format(p *isa.Program) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Source)
	fmt.Fprintf(&b, "imem %d\nfmem %d\n", p.IntMem, p.FloatMem)
	if len(p.IntData) > 0 {
		b.WriteString("idata 0:")
		for _, v := range p.IntData {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteString("\n")
	}
	if len(p.FloatData) > 0 {
		b.WriteString("fdata 0:")
		for _, v := range p.FloatData {
			b.WriteString(" ")
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteString("\n")
	}
	// The assembler resolves call targets by name after all functions
	// are declared, so original declaration order is preserved — and
	// with it the program-wide ordering of branch instructions, which
	// keeps site ids stable across the round trip.
	for fi := range p.Funcs {
		if err := formatFunc(&b, p, fi); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func formatFunc(b *strings.Builder, p *isa.Program, fi int) error {
	f := &p.Funcs[fi]
	var params []string
	for _, fp := range f.FParams {
		if fp {
			params = append(params, "float")
		} else {
			params = append(params, "int")
		}
	}
	ret := "int"
	switch f.Kind {
	case isa.FuncFloat:
		ret = "float"
	case isa.FuncVoid:
		ret = "void"
	}
	fmt.Fprintf(b, "\nfunc %s (%s) %s\n", f.Name, strings.Join(params, ","), ret)

	// Collect branch/jump targets needing labels.
	labels := map[int]string{}
	for _, in := range f.Code {
		if in.Op == isa.OpBr || in.Op == isa.OpJmp {
			if _, ok := labels[int(in.Target)]; !ok {
				labels[int(in.Target)] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	for pc, in := range f.Code {
		if l, ok := labels[pc]; ok {
			fmt.Fprintf(b, "%s:\n", l)
		}
		line, err := formatInstr(p, f, in, labels)
		if err != nil {
			return fmt.Errorf("%s+%d: %w", f.Name, pc, err)
		}
		fmt.Fprintf(b, "    %s\n", line)
	}
	return nil
}

func formatInstr(p *isa.Program, f *isa.Func, in isa.Instr, labels map[int]string) (string, error) {
	op := in.Op.String()
	switch in.Op {
	case isa.OpNop:
		return "nop", nil
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSle,
		isa.OpSeq, isa.OpSne:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, in.C, in.A, in.B), nil
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpPow:
		return fmt.Sprintf("%s f%d, f%d, f%d", op, in.C, in.A, in.B), nil
	case isa.OpFSlt, isa.OpFSle, isa.OpFSeq, isa.OpFSne:
		return fmt.Sprintf("%s r%d, f%d, f%d", op, in.C, in.A, in.B), nil
	case isa.OpNeg, isa.OpNot, isa.OpMov:
		return fmt.Sprintf("%s r%d, r%d", op, in.C, in.A), nil
	case isa.OpFNeg, isa.OpFMov, isa.OpSqrt, isa.OpSin, isa.OpCos, isa.OpExp,
		isa.OpLog, isa.OpFAbs, isa.OpFloor:
		return fmt.Sprintf("%s f%d, f%d", op, in.C, in.A), nil
	case isa.OpCvtIF:
		return fmt.Sprintf("cvtif f%d, r%d", in.C, in.A), nil
	case isa.OpCvtFI:
		return fmt.Sprintf("cvtfi r%d, f%d", in.C, in.A), nil
	case isa.OpLdi:
		return fmt.Sprintf("ldi r%d, %d", in.C, in.Imm), nil
	case isa.OpLdf:
		return fmt.Sprintf("ldf f%d, %s", in.C, strconv.FormatFloat(in.FImm, 'g', -1, 64)), nil
	case isa.OpLd:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.C, in.Imm, in.A), nil
	case isa.OpSt:
		return fmt.Sprintf("st %d(r%d), r%d", in.Imm, in.A, in.B), nil
	case isa.OpFLd:
		return fmt.Sprintf("fld f%d, %d(r%d)", in.C, in.Imm, in.A), nil
	case isa.OpFSt:
		return fmt.Sprintf("fst %d(r%d), f%d", in.Imm, in.A, in.B), nil
	case isa.OpBr:
		s := p.Sites[in.Site]
		attrs := []string{fmt.Sprintf("label=%s", sanitizeLabel(s.Label))}
		if s.LoopBack {
			attrs = append(attrs, "back")
		}
		if s.LoopDepth != 0 {
			attrs = append(attrs, fmt.Sprintf("depth=%d", s.LoopDepth))
		}
		return fmt.Sprintf("br r%d, %s [%s]", in.A, labels[int(in.Target)], strings.Join(attrs, " ")), nil
	case isa.OpJmp:
		return fmt.Sprintf("jmp %s", labels[int(in.Target)]), nil
	case isa.OpCall:
		res := "-"
		if in.C >= 0 {
			callee := &p.Funcs[in.Target]
			if callee.Kind == isa.FuncFloat {
				res = fmt.Sprintf("f%d", in.C)
			} else {
				res = fmt.Sprintf("r%d", in.C)
			}
		}
		return fmt.Sprintf("call %s, r%d, f%d, %s", p.Funcs[in.Target].Name, in.A, in.B, res), nil
	case isa.OpICall:
		return fmt.Sprintf("icall r%d, r%d, r%d", in.A, in.B, in.C), nil
	case isa.OpRet:
		if f.Kind == isa.FuncVoid {
			return "ret", nil
		}
		if f.Kind == isa.FuncFloat {
			return fmt.Sprintf("ret f%d", in.A), nil
		}
		return fmt.Sprintf("ret r%d", in.A), nil
	case isa.OpGetc:
		return fmt.Sprintf("getc r%d", in.C), nil
	case isa.OpPutc:
		return fmt.Sprintf("putc r%d", in.A), nil
	case isa.OpHalt:
		return fmt.Sprintf("halt r%d", in.A), nil
	}
	return "", fmt.Errorf("asm: operation %v has no textual form", in.Op)
}

// sanitizeLabel keeps site labels attribute-safe (no spaces or
// brackets).
func sanitizeLabel(s string) string {
	if s == "" {
		return "br"
	}
	s = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '[', ']', ',', '=':
			return '_'
		}
		return r
	}, s)
	return s
}

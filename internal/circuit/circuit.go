// Package circuit is the repository's three-state circuit breaker,
// shared by every layer that guards flaky persistent I/O: branchprofd
// wraps its whole-database saves in one, and the sharded profile
// store (internal/store/shardstore) gives every shard its own so a
// single misbehaving shard directory degrades alone. The automaton is
// deliberately minimal — consecutive-failure threshold, cooldown,
// single half-open probe — and deterministic under an injected clock
// so chaos tests can walk it without sleeping.
package circuit

import (
	"sync"
	"time"
)

// State is the classic three-state circuit-breaker automaton.
type State uint8

const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state the way health endpoints report it.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker guards one persistent-I/O path. Threshold consecutive
// failures open the circuit; while open every attempt is skipped (the
// caller degrades to compute-only behaviour) until the cooldown
// elapses, after which exactly one probe is allowed through
// half-open: its success closes the circuit, its failure re-opens it
// for another cooldown. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// New builds a breaker. Zero threshold means 3, zero cooldown means
// 5s, nil now means time.Now.
func New(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether the caller may attempt the guarded I/O now.
// Every Allow that returned true must be matched with Record(err).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an allowed attempt.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = Closed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
		b.probing = false
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
		}
	case Open:
		// A straggler attempt admitted before the trip; stay open.
		b.openedAt = b.now()
	}
}

// State returns the current state for health reporting. An open
// circuit whose cooldown has elapsed still reports Open until the
// next Allow promotes it — health is about what requests experience.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Degraded reports whether the guarded I/O is currently being skipped
// or probed — i.e. the caller is not persisting normally.
func (b *Breaker) Degraded() bool {
	return b.State() != Closed
}

package circuit

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These are property tests of the breaker under contention (run them
// with -race): the automaton's guarantees must hold not just along the
// sequential walk TestStateMachine takes but under any interleaving of
// concurrent Allow/Record pairs.

// TestConcurrentNeverTripsBelowThreshold: the breaker must never leave
// Closed unless the failure threshold was actually reached. With fewer
// than threshold failure Records in the entire run — against a storm
// of concurrent successes — no interleaving can accumulate threshold
// consecutive failures, so every Allow must say yes and the final
// state must be Closed.
func TestConcurrentNeverTripsBelowThreshold(t *testing.T) {
	const threshold = 5
	var nanos atomic.Int64 // frozen clock: an accidental Open would stick
	now := func() time.Time { return time.Unix(0, nanos.Load()) }
	b := New(threshold, time.Minute, now)

	var denied atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if !b.Allow() {
					denied.Add(1)
					continue
				}
				b.Record(nil)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < threshold-1; i++ {
			if b.Allow() {
				b.Record(errDisk)
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	if n := denied.Load(); n != 0 {
		t.Fatalf("breaker denied %d attempts though only %d failures (threshold %d) ever happened", n, threshold-1, threshold)
	}
	if st := b.State(); st != Closed {
		t.Fatalf("breaker %v after sub-threshold failures, want closed", st)
	}
}

// TestConcurrentSingleProbeAfterCooldown: once open, concurrent
// callers racing the elapsed cooldown must win exactly one half-open
// probe between Records — the breaker's reason to exist is collapsing
// a thundering herd to one attempt.
func TestConcurrentSingleProbeAfterCooldown(t *testing.T) {
	const cooldown = time.Minute
	var nanos atomic.Int64
	now := func() time.Time { return time.Unix(0, nanos.Load()) }
	b := New(1, cooldown, now)

	b.Allow()
	b.Record(errDisk) // threshold 1: open immediately
	if st := b.State(); st != Open {
		t.Fatalf("breaker %v after threshold failures, want open", st)
	}

	// Cooldown not elapsed: every concurrent attempt is denied.
	var allowed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				allowed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := allowed.Load(); n != 0 {
		t.Fatalf("open breaker admitted %d attempts before cooldown", n)
	}

	// Cooldown elapsed: of 16 racing callers exactly one probes; the
	// losers stay denied until that probe's outcome is recorded.
	nanos.Add(int64(cooldown) + 1)
	allowed.Store(0)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				allowed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := allowed.Load(); n != 1 {
		t.Fatalf("half-open breaker admitted %d probes, want exactly 1", n)
	}
	b.Record(nil)
	if st := b.State(); st != Closed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
}

// TestConcurrentChurnEndsConsistent: arbitrary concurrent mixes of
// success and failure must leave the automaton in a legal state with
// the probe flag released — no interleaving may wedge it where every
// future Allow is denied despite a healthy dependency. The final
// sequential success (possibly after one cooldown wait) must close it.
func TestConcurrentChurnEndsConsistent(t *testing.T) {
	const cooldown = time.Minute
	var nanos atomic.Int64
	now := func() time.Time { return time.Unix(0, nanos.Load()) }
	b := New(3, cooldown, now)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if !b.Allow() {
					continue
				}
				if (g+i)%3 == 0 {
					b.Record(errDisk)
				} else {
					b.Record(nil)
				}
			}
		}(g)
	}
	wg.Wait()

	if st := b.State(); st != Closed && st != Open && st != HalfOpen {
		t.Fatalf("breaker in impossible state %d", st)
	}
	// Recovery path: at most one cooldown + probe away from Closed.
	nanos.Add(int64(cooldown) + 1)
	if !b.Allow() {
		nanos.Add(int64(cooldown) + 1)
		if !b.Allow() {
			t.Fatalf("breaker wedged: no probe admitted after cooldown (state %v)", b.State())
		}
	}
	b.Record(nil)
	if st := b.State(); st != Closed || !b.Allow() {
		t.Fatalf("breaker %v after successful probe, want closed and allowing", st)
	}
	b.Record(nil)
}

package circuit

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

var errDisk = errors.New("disk on fire")

// TestStateMachine walks the closed → open → half-open transitions
// with a fake clock.
func TestStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := New(2, time.Second, clk.now)

	// Closed: attempts flow, one failure is tolerated.
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Record(errDisk)
	if b.State() != Closed || b.Degraded() {
		t.Fatalf("one failure under threshold: %v", b.State())
	}
	// A success resets the consecutive count.
	b.Allow()
	b.Record(nil)
	b.Allow()
	b.Record(errDisk)
	if b.State() != Closed {
		t.Fatal("success did not reset the failure count")
	}

	// Threshold consecutive failures open the circuit.
	b.Allow()
	b.Record(errDisk)
	b.Allow()
	b.Record(errDisk)
	if b.State() != Open || !b.Degraded() {
		t.Fatalf("after threshold failures: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe.
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed, probe must be allowed")
	}
	if b.State() != HalfOpen {
		t.Fatalf("probing state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}

	// Failed probe re-opens for another full cooldown.
	b.Record(errDisk)
	if b.State() != Open {
		t.Fatalf("failed probe: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed immediately")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe window")
	}

	// Successful probe closes the circuit fully.
	b.Record(nil)
	if b.State() != Closed || b.Degraded() {
		t.Fatalf("after successful probe: %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Record(nil)
}

// TestDefaults: the zero-ish constructor arguments pick the documented
// defaults rather than a breaker that trips instantly or never.
func TestDefaults(t *testing.T) {
	b := New(0, 0, nil)
	if b.threshold != 3 || b.cooldown != 5*time.Second {
		t.Fatalf("defaults: threshold=%d cooldown=%v", b.threshold, b.cooldown)
	}
	if !b.Allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.Record(nil)
}

// TestStateString covers the health-reporting names.
func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", State(9): "unknown",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

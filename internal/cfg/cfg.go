// Package cfg reconstructs basic-block control-flow graphs from
// compiled programs and implements Fisher-style trace selection over
// them — the consumer the paper's predictions were for: "code
// generation techniques like trace scheduling ... must rely on branch
// predictions to select candidate instructions."
//
// Blocks are rebuilt from the instruction stream (leaders at branch
// targets and after control transfers); edge weights come either from
// a run's exact per-PC execution counts and branch outcome profile,
// or from a static prediction (probability-1 edges along the
// predicted directions).
package cfg

import (
	"fmt"
	"sort"

	"branchprof/internal/isa"
)

// EdgeKind classifies a control-flow edge.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeFall  EdgeKind = iota // fallthrough (branch not taken, or past a call)
	EdgeTaken                 // conditional branch taken
	EdgeJump                  // unconditional jump
)

// Edge is a weighted successor link.
type Edge struct {
	To     int // successor block index within the function; -1 = exit
	Kind   EdgeKind
	Weight uint64
}

// Block is one basic block of a function.
type Block struct {
	Start, End int // instruction index range [Start, End)
	Count      uint64
	Succs      []Edge
}

// Instrs returns the block size in instructions.
func (b *Block) Instrs() int { return b.End - b.Start }

// Graph is one function's CFG.
type Graph struct {
	Func   string
	Blocks []Block
}

// Build reconstructs the static CFG of function fi.
func Build(p *isa.Program, fi int) (*Graph, error) {
	f := &p.Funcs[fi]
	n := len(f.Code)
	if n == 0 {
		return nil, fmt.Errorf("cfg: %s has no code", f.Name)
	}
	leader := make([]bool, n)
	leader[0] = true
	for pc, in := range f.Code {
		switch in.Op {
		case isa.OpBr, isa.OpJmp:
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case isa.OpRet, isa.OpHalt:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	g := &Graph{Func: f.Name}
	blockAt := make([]int, n)
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, Block{Start: pc})
		}
		blockAt[pc] = len(g.Blocks) - 1
	}
	for i := range g.Blocks {
		if i+1 < len(g.Blocks) {
			g.Blocks[i].End = g.Blocks[i+1].Start
		} else {
			g.Blocks[i].End = n
		}
	}
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := f.Code[b.End-1]
		switch last.Op {
		case isa.OpBr:
			b.Succs = append(b.Succs,
				Edge{To: blockAt[last.Target], Kind: EdgeTaken},
				Edge{To: fallTo(b.End, n, blockAt), Kind: EdgeFall})
		case isa.OpJmp:
			b.Succs = append(b.Succs, Edge{To: blockAt[last.Target], Kind: EdgeJump})
		case isa.OpRet, isa.OpHalt:
			// exit: no successors
		default:
			b.Succs = append(b.Succs, Edge{To: fallTo(b.End, n, blockAt), Kind: EdgeFall})
		}
	}
	return g, nil
}

func fallTo(end, n int, blockAt []int) int {
	if end >= n {
		return -1
	}
	return blockAt[end]
}

// AttachRunCounts weights the graph with a run's measurements: block
// counts from per-PC execution counts, taken/fallthrough edge weights
// from the branch site profile, and jump/fall edges from the
// successor block's entry count. perPC must come from the same
// program (vm.Config.PerPC).
func (g *Graph) AttachRunCounts(p *isa.Program, fi int, perPC []uint64, siteTaken, siteTotal []uint64) {
	f := &p.Funcs[fi]
	for i := range g.Blocks {
		b := &g.Blocks[i]
		b.Count = perPC[b.Start]
		last := f.Code[b.End-1]
		for e := range b.Succs {
			edge := &b.Succs[e]
			switch {
			case last.Op == isa.OpBr && edge.Kind == EdgeTaken:
				edge.Weight = siteTaken[last.Site]
			case last.Op == isa.OpBr && edge.Kind == EdgeFall:
				edge.Weight = siteTotal[last.Site] - siteTaken[last.Site]
			default:
				// Unconditional: all executions flow along it.
				edge.Weight = perPC[b.End-1]
			}
		}
	}
}

// AttachPrediction weights edges from a static prediction instead of
// measurements: the predicted direction of each branch gets the
// block's weight, the other direction zero. dirs[i] is true when site
// i is predicted taken. Block counts must already be set (or are
// taken as 1 when zero, for purely static analysis).
func (g *Graph) AttachPrediction(p *isa.Program, fi int, dirs []bool) {
	f := &p.Funcs[fi]
	for i := range g.Blocks {
		b := &g.Blocks[i]
		w := b.Count
		if w == 0 {
			w = 1
		}
		last := f.Code[b.End-1]
		for e := range b.Succs {
			edge := &b.Succs[e]
			if last.Op == isa.OpBr {
				predictedTaken := dirs[last.Site]
				if (edge.Kind == EdgeTaken) == predictedTaken {
					edge.Weight = w
				} else {
					edge.Weight = 0
				}
			} else {
				edge.Weight = w
			}
		}
	}
}

// Trace is one selected trace: a sequence of block indices.
type Trace struct {
	Blocks []int
	Instrs int    // total instructions along the trace
	Seed   uint64 // execution count of the seed block
}

// SelectTraces runs the classic greedy trace selection: repeatedly
// seed at the hottest unvisited block and grow forward along the
// most likely (heaviest) successor edge, stopping at visited blocks,
// exits, or zero-weight edges. Every block lands in exactly one
// trace.
func (g *Graph) SelectTraces() []Trace {
	order := make([]int, len(g.Blocks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Blocks[order[a]].Count > g.Blocks[order[b]].Count
	})
	visited := make([]bool, len(g.Blocks))
	var traces []Trace
	for _, seed := range order {
		if visited[seed] {
			continue
		}
		tr := Trace{Seed: g.Blocks[seed].Count}
		cur := seed
		for cur >= 0 && !visited[cur] {
			visited[cur] = true
			tr.Blocks = append(tr.Blocks, cur)
			tr.Instrs += g.Blocks[cur].Instrs()
			// Most likely successor.
			next := -1
			var best uint64
			hasAny := false
			for _, e := range g.Blocks[cur].Succs {
				if e.To >= 0 && (!hasAny || e.Weight > best) {
					// Prefer nonzero weights; a zero-weight edge only
					// continues a trace when nothing better exists
					// and the block was never executed anyway.
					if e.Weight > 0 || g.Blocks[cur].Count == 0 {
						next, best, hasAny = e.To, e.Weight, true
					}
				}
			}
			cur = next
		}
		traces = append(traces, tr)
	}
	return traces
}

// WeightedMeanLength returns the execution-weighted mean trace length
// in instructions: hot traces dominate, matching what a trace
// scheduler actually compiles.
func WeightedMeanLength(traces []Trace) float64 {
	var num, den float64
	for _, t := range traces {
		w := float64(t.Seed)
		num += w * float64(t.Instrs)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

package cfg

import (
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
)

const src = `
func main() int {
	var i int = 0;
	var n int = 0;
	while (i < 100) {
		if (i % 10 == 0) {
			n = n + 2;
		} else {
			n = n + 1;
		}
		i = i + 1;
	}
	return n;
}
`

func buildMain(t *testing.T) (*Graph, *vm.Result, int) {
	t.Helper()
	p, err := mfc.Compile("cfgtest", src, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, &vm.Config{PerPC: true})
	if err != nil {
		t.Fatal(err)
	}
	fi := p.Main
	g, err := Build(p, fi)
	if err != nil {
		t.Fatal(err)
	}
	g.AttachRunCounts(p, fi, res.PerPC[fi], res.SiteTaken, res.SiteTotal)
	return g, res, fi
}

func TestBuildStructure(t *testing.T) {
	g, _, _ := buildMain(t)
	if len(g.Blocks) < 5 {
		t.Fatalf("expected several blocks, got %d", len(g.Blocks))
	}
	// Blocks partition the code with no gaps or overlaps.
	end := 0
	for i, b := range g.Blocks {
		if b.Start != end {
			t.Errorf("block %d starts at %d, previous ended at %d", i, b.Start, end)
		}
		if b.End <= b.Start {
			t.Errorf("block %d empty: [%d,%d)", i, b.Start, b.End)
		}
		end = b.End
		for _, e := range b.Succs {
			if e.To >= len(g.Blocks) {
				t.Errorf("block %d has successor %d out of range", i, e.To)
			}
		}
	}
}

func TestCountsConsistent(t *testing.T) {
	g, res, _ := buildMain(t)
	// Total instructions from block counts must equal the run total.
	var sum uint64
	for _, b := range g.Blocks {
		sum += b.Count * uint64(b.Instrs())
	}
	if sum != res.Instrs {
		t.Errorf("block-count reconstruction %d != run total %d", sum, res.Instrs)
	}
	// Edge weights out of an executed branch block sum to its count.
	for i, b := range g.Blocks {
		if len(b.Succs) == 2 && b.Count > 0 {
			w := b.Succs[0].Weight + b.Succs[1].Weight
			if w != b.Count {
				t.Errorf("block %d: branch edges sum %d, block count %d", i, w, b.Count)
			}
		}
	}
}

func TestSelectTracesPartition(t *testing.T) {
	g, _, _ := buildMain(t)
	traces := g.SelectTraces()
	seen := make(map[int]bool)
	total := 0
	for _, tr := range traces {
		for _, b := range tr.Blocks {
			if seen[b] {
				t.Fatalf("block %d in two traces", b)
			}
			seen[b] = true
		}
		total += len(tr.Blocks)
	}
	if total != len(g.Blocks) {
		t.Errorf("traces cover %d of %d blocks", total, len(g.Blocks))
	}
	if WeightedMeanLength(traces) <= 0 {
		t.Error("weighted mean length should be positive")
	}
	// The hottest trace should include the loop body: several blocks.
	if len(traces[0].Blocks) < 3 {
		t.Errorf("hot trace has only %d blocks", len(traces[0].Blocks))
	}
}

func TestPredictionWeights(t *testing.T) {
	p, err := mfc.Compile("cfgtest", src, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fi := p.Main
	g, err := Build(p, fi)
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]bool, len(p.Sites))
	for i, s := range p.Sites {
		dirs[i] = s.LoopBack // loop heuristic
	}
	g.AttachPrediction(p, fi, dirs)
	for i, b := range g.Blocks {
		if len(b.Succs) == 2 {
			nz := 0
			for _, e := range b.Succs {
				if e.Weight > 0 {
					nz++
				}
			}
			if nz != 1 {
				t.Errorf("block %d: prediction should weight exactly one branch edge, got %d", i, nz)
			}
		}
	}
}

// TestProfileBeatsHeuristicOnBiasedBranch: when a branch is usually
// taken but is not a loop back edge, the heuristic grows the trace the
// wrong way and profile-guided selection wins.
func TestProfileBeatsHeuristicOnBiasedBranch(t *testing.T) {
	src := `
func main() int {
	var i int;
	var n int = 0;
	for (i = 0; i < 1000; i = i + 1) {
		if (i % 100 != 0) {
			// hot arm: taken 99% of the time, but a plain "if"
			n = n + 1;
			n = n + 2;
			n = n + 3;
		} else {
			n = n - 1;
		}
	}
	return n;
}
`
	p, err := mfc.Compile("bias", src, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, &vm.Config{PerPC: true})
	if err != nil {
		t.Fatal(err)
	}
	fi := p.Main
	g, err := Build(p, fi)
	if err != nil {
		t.Fatal(err)
	}
	g.AttachRunCounts(p, fi, res.PerPC[fi], res.SiteTaken, res.SiteTotal)
	profile := WeightedMeanLength(g.SelectTraces())

	dirs := make([]bool, len(p.Sites))
	for i, s := range p.Sites {
		dirs[i] = s.LoopBack // heuristic: predicts the hot if not-taken
	}
	g2, err := Build(p, fi)
	if err != nil {
		t.Fatal(err)
	}
	g2.AttachRunCounts(p, fi, res.PerPC[fi], res.SiteTaken, res.SiteTotal)
	g2.AttachPrediction(p, fi, dirs)
	heuristic := WeightedMeanLength(g2.SelectTraces())

	if profile <= heuristic {
		t.Errorf("profile traces (%v) should beat heuristic traces (%v) on a biased non-loop branch",
			profile, heuristic)
	}
}

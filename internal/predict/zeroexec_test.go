package predict

import (
	"math"
	"testing"

	"branchprof/internal/ifprob"
)

// Regression tests for the zero-execution edge cases: a profile from a
// run that executed no conditional branches must neither poison a
// Scaled combination with a 1/0 weight nor make PercentCorrect
// non-finite.

func TestCombineScaledSkipsZeroExecutionProfile(t *testing.T) {
	ss := sites(2)
	live := profile([]uint64{9, 1}, []uint64{10, 10})
	empty := profile([]uint64{0, 0}, []uint64{0, 0}) // zero-branch run
	got, err := Combine([]*ifprob.Profile{live, empty}, Scaled, ss, AlwaysNotTaken)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Combine([]*ifprob.Profile{live}, Scaled, ss, AlwaysNotTaken)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Dir {
		if got.Dir[i] != want.Dir[i] || got.FromProfile[i] != want.FromProfile[i] {
			t.Fatalf("site %d: with empty profile %v/%v, without %v/%v",
				i, got.Dir[i], got.FromProfile[i], want.Dir[i], want.FromProfile[i])
		}
	}
}

func TestCombineScaledAllZeroExecutionFallsBack(t *testing.T) {
	ss := sites(2)
	empty := profile([]uint64{0, 0}, []uint64{0, 0})
	pr, err := Combine([]*ifprob.Profile{empty, empty}, Scaled, ss, AlwaysTaken)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pr.Dir {
		if pr.FromProfile[i] {
			t.Errorf("site %d claims profile data from zero-execution profiles", i)
		}
		if pr.Dir[i] != Taken {
			t.Errorf("site %d = %v, want the AlwaysTaken fallback", i, pr.Dir[i])
		}
	}
}

func TestPercentCorrectZeroExecuted(t *testing.T) {
	ev := Eval{}
	got := ev.PercentCorrect()
	if got != 1 {
		t.Errorf("PercentCorrect with no executions = %v, want 1", got)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("PercentCorrect with no executions is non-finite: %v", got)
	}
}

func TestEvaluateZeroBranchTarget(t *testing.T) {
	target := profile([]uint64{0, 0}, []uint64{0, 0})
	pr := FromHeuristic(sites(2), nil)
	ev, err := Evaluate(pr, target)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Executed != 0 || ev.Mispredicts != 0 {
		t.Fatalf("zero-branch target evaluated to %+v", ev)
	}
	if ev.PercentCorrect() != 1 {
		t.Errorf("PercentCorrect = %v, want 1", ev.PercentCorrect())
	}
}

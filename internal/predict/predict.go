// Package predict implements the paper's static branch predictors and
// their evaluation.
//
// A predictor attaches one direction to each static conditional
// branch at compile time. The paper compares:
//
//   - Self: the target run predicts itself — the best any static
//     predictor can do, since every branch is predicted in its
//     majority direction;
//   - a single other dataset's profile;
//   - combined predictors over all other datasets: Unscaled (add raw
//     counts), Scaled (give each dataset equal total weight — the one
//     the paper reports), and Polling (one vote per dataset, which
//     the paper discarded as poor);
//   - naive heuristics (the "loop vs non-loop" distinction), the
//     compiler's default when no feedback exists.
package predict

import (
	"fmt"

	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
)

// Direction is a predicted branch direction.
type Direction uint8

// Directions.
const (
	NotTaken Direction = iota
	Taken
)

// String returns "taken" or "not-taken".
func (d Direction) String() string {
	if d == Taken {
		return "taken"
	}
	return "not-taken"
}

// Heuristic predicts a direction from static branch properties alone.
type Heuristic func(isa.BranchSite) Direction

// LoopHeuristic predicts loop back edges taken and everything else
// not taken — the paper's "very simple heuristics, distinguishing
// between loops and nonloops".
func LoopHeuristic(s isa.BranchSite) Direction {
	if s.LoopBack {
		return Taken
	}
	return NotTaken
}

// AlwaysTaken predicts every branch taken (a classic opcode-free
// hardware default, included as a baseline).
func AlwaysTaken(isa.BranchSite) Direction { return Taken }

// AlwaysNotTaken predicts every branch not taken.
func AlwaysNotTaken(isa.BranchSite) Direction { return NotTaken }

// Prediction assigns a direction to every static branch site.
type Prediction struct {
	Dir []Direction
	// FromProfile[i] is true when site i's direction came from
	// profile data rather than the fallback heuristic.
	FromProfile []bool
}

// Sites returns the number of sites covered.
func (p *Prediction) Sites() int { return len(p.Dir) }

// Table is a weighted branch-count table, the common form to which
// every profile combination reduces before directions are extracted.
type Table struct {
	TakenW []float64
	TotalW []float64
}

// NewTable returns an empty table for n sites.
func NewTable(n int) *Table {
	return &Table{TakenW: make([]float64, n), TotalW: make([]float64, n)}
}

// ErrNoProfiles reports a predictor asked to combine an empty (or
// all-nil, on a degraded suite) profile set.
var ErrNoProfiles = fmt.Errorf("predict: no profiles to combine")

// AddProfile accumulates a profile with the given weight.
func (t *Table) AddProfile(p *ifprob.Profile, weight float64) error {
	if p == nil {
		return fmt.Errorf("predict: nil profile")
	}
	if len(p.Total) != len(t.TotalW) {
		return fmt.Errorf("predict: profile has %d sites, table has %d", len(p.Total), len(t.TotalW))
	}
	for i := range p.Total {
		t.TakenW[i] += weight * float64(p.Taken[i])
		t.TotalW[i] += weight * float64(p.Total[i])
	}
	return nil
}

// FromTable extracts per-site directions, using sites (for the
// fallback heuristic) where the table has no data. A site whose
// weighted taken count is at least half its weighted total is
// predicted taken.
func FromTable(t *Table, sites []isa.BranchSite, fallback Heuristic) (*Prediction, error) {
	if len(sites) != len(t.TotalW) {
		return nil, fmt.Errorf("predict: table has %d sites, program has %d", len(t.TotalW), len(sites))
	}
	if fallback == nil {
		fallback = LoopHeuristic
	}
	pr := &Prediction{
		Dir:         make([]Direction, len(sites)),
		FromProfile: make([]bool, len(sites)),
	}
	for i := range sites {
		if t.TotalW[i] > 0 {
			pr.FromProfile[i] = true
			if t.TakenW[i]*2 >= t.TotalW[i] {
				pr.Dir[i] = Taken
			}
		} else {
			pr.Dir[i] = fallback(sites[i])
		}
	}
	return pr, nil
}

// FromProfile builds a prediction from a single profile (including
// the self/oracle case, where the profile comes from the target run
// itself).
func FromProfile(p *ifprob.Profile, sites []isa.BranchSite, fallback Heuristic) (*Prediction, error) {
	if p == nil {
		return nil, fmt.Errorf("predict: nil profile")
	}
	t := NewTable(len(p.Total))
	if err := t.AddProfile(p, 1); err != nil {
		return nil, err
	}
	return FromTable(t, sites, fallback)
}

// FromHeuristic builds a prediction with no profile data at all.
func FromHeuristic(sites []isa.BranchSite, h Heuristic) *Prediction {
	if h == nil {
		h = LoopHeuristic
	}
	pr := &Prediction{
		Dir:         make([]Direction, len(sites)),
		FromProfile: make([]bool, len(sites)),
	}
	for i, s := range sites {
		pr.Dir[i] = h(s)
	}
	return pr
}

// CombineMode selects how multiple predictor datasets are merged.
type CombineMode uint8

// Combination strategies from the paper's "scaled vs unscaled summary
// predictors" discussion.
const (
	// Unscaled adds raw counts: long runs dominate.
	Unscaled CombineMode = iota
	// Scaled divides each dataset's counts by its total executed
	// branches, giving every dataset equal weight. This is what the
	// paper reports.
	Scaled
	// Polling gives each dataset one vote per site regardless of
	// counts. The paper found it poor and discarded it.
	Polling
)

// String names the mode.
func (m CombineMode) String() string {
	switch m {
	case Unscaled:
		return "unscaled"
	case Scaled:
		return "scaled"
	case Polling:
		return "polling"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Combine merges the given profiles under the mode and extracts a
// prediction. Nil entries — holes a degraded suite may hand over —
// are skipped; an empty or all-nil set returns ErrNoProfiles.
func Combine(profiles []*ifprob.Profile, mode CombineMode, sites []isa.BranchSite, fallback Heuristic) (*Prediction, error) {
	live := profiles[:0:0]
	for _, p := range profiles {
		if p != nil {
			live = append(live, p)
		}
	}
	profiles = live
	if len(profiles) == 0 {
		return nil, ErrNoProfiles
	}
	t := NewTable(profiles[0].Sites())
	for _, p := range profiles {
		var w float64
		switch mode {
		case Unscaled:
			w = 1
		case Scaled:
			ex := p.Executed()
			if ex == 0 {
				continue
			}
			w = 1 / float64(ex)
		case Polling:
			// One vote per dataset per site: weight each site's
			// contribution to ±1 by majority.
			if len(p.Total) != len(t.TotalW) {
				return nil, fmt.Errorf("predict: profile has %d sites, table has %d", len(p.Total), len(t.TotalW))
			}
			for i := range p.Total {
				if p.Total[i] == 0 {
					continue
				}
				t.TotalW[i] += 1
				if p.Taken[i]*2 >= p.Total[i] {
					t.TakenW[i] += 1
				}
			}
			continue
		default:
			return nil, fmt.Errorf("predict: unknown combine mode %v", mode)
		}
		if err := t.AddProfile(p, w); err != nil {
			return nil, err
		}
	}
	return FromTable(t, sites, fallback)
}

// Eval is the outcome of measuring a prediction against a target
// run's actual branch behaviour.
type Eval struct {
	Executed    uint64 // conditional branches executed by the target
	Mispredicts uint64
}

// Correct returns the correctly predicted branch count.
func (e Eval) Correct() uint64 { return e.Executed - e.Mispredicts }

// PercentCorrect is the traditional measure the paper argues is
// inadequate, in [0,1].
func (e Eval) PercentCorrect() float64 {
	if e.Executed == 0 {
		return 1
	}
	return float64(e.Correct()) / float64(e.Executed)
}

// Evaluate counts how many of the target run's branches the
// prediction gets wrong. Each site's mispredicts are the executions
// that went against the predicted direction.
func Evaluate(pr *Prediction, target *ifprob.Profile) (Eval, error) {
	if pr == nil || target == nil {
		return Eval{}, fmt.Errorf("predict: nil prediction or target")
	}
	if len(pr.Dir) != len(target.Total) {
		return Eval{}, fmt.Errorf("predict: prediction covers %d sites, target has %d", len(pr.Dir), len(target.Total))
	}
	var ev Eval
	for i := range target.Total {
		ev.Executed += target.Total[i]
		if pr.Dir[i] == Taken {
			ev.Mispredicts += target.Total[i] - target.Taken[i]
		} else {
			ev.Mispredicts += target.Taken[i]
		}
	}
	return ev, nil
}

// SiteEval is a per-site breakdown entry.
type SiteEval struct {
	Site        isa.BranchSite
	Dir         Direction
	Executed    uint64
	Mispredicts uint64
}

// EvaluatePerSite returns the per-site breakdown, useful for finding
// the branches responsible for poor cross-dataset prediction.
func EvaluatePerSite(pr *Prediction, target *ifprob.Profile, sites []isa.BranchSite) ([]SiteEval, error) {
	if pr == nil || target == nil {
		return nil, fmt.Errorf("predict: nil prediction or target")
	}
	if len(pr.Dir) != len(target.Total) || len(sites) != len(target.Total) {
		return nil, fmt.Errorf("predict: site count mismatch")
	}
	out := make([]SiteEval, len(sites))
	for i := range sites {
		se := SiteEval{Site: sites[i], Dir: pr.Dir[i], Executed: target.Total[i]}
		if pr.Dir[i] == Taken {
			se.Mispredicts = target.Total[i] - target.Taken[i]
		} else {
			se.Mispredicts = target.Taken[i]
		}
		out[i] = se
	}
	return out, nil
}

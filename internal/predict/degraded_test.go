package predict

import (
	"errors"
	"testing"

	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
)

func degradedSites(n int) []isa.BranchSite {
	sites := make([]isa.BranchSite, n)
	for i := range sites {
		sites[i] = isa.BranchSite{ID: i, Func: "main"}
	}
	return sites
}

// TestPartialProfileSetCombines: a degraded suite can hand Combine a
// profile slice with holes; the holes are skipped and the surviving
// profiles still drive the prediction.
func TestPartialProfileSetCombines(t *testing.T) {
	sites := degradedSites(2)
	full := &ifprob.Profile{Program: "p", Taken: []uint64{10, 0}, Total: []uint64{10, 10}}
	for _, mode := range []CombineMode{Unscaled, Scaled, Polling} {
		pr, err := Combine([]*ifprob.Profile{nil, full, nil}, mode, sites, nil)
		if err != nil {
			t.Fatalf("%v over a holey set: %v", mode, err)
		}
		if pr.Dir[0] != Taken || pr.Dir[1] != NotTaken {
			t.Fatalf("%v directions = %v", mode, pr.Dir)
		}
	}
}

// TestPartialAllNilProfilesIsError: a set that degrades to nothing is
// a typed error, not a panic.
func TestPartialAllNilProfilesIsError(t *testing.T) {
	for _, profiles := range [][]*ifprob.Profile{nil, {nil, nil}} {
		if _, err := Combine(profiles, Scaled, degradedSites(1), nil); !errors.Is(err, ErrNoProfiles) {
			t.Fatalf("Combine(%v) err = %v, want ErrNoProfiles", profiles, err)
		}
	}
}

// TestPartialNilInputsRejected: nil profiles and predictions return
// errors everywhere a degraded caller could pass them.
func TestPartialNilInputsRejected(t *testing.T) {
	sites := degradedSites(1)
	if _, err := FromProfile(nil, sites, nil); err == nil {
		t.Fatal("FromProfile(nil) succeeded")
	}
	if err := NewTable(1).AddProfile(nil, 1); err == nil {
		t.Fatal("AddProfile(nil) succeeded")
	}
	pr := FromHeuristic(sites, nil)
	if _, err := Evaluate(pr, nil); err == nil {
		t.Fatal("Evaluate(nil target) succeeded")
	}
	if _, err := Evaluate(nil, &ifprob.Profile{Taken: []uint64{0}, Total: []uint64{1}}); err == nil {
		t.Fatal("Evaluate(nil prediction) succeeded")
	}
	if _, err := EvaluatePerSite(pr, nil, sites); err == nil {
		t.Fatal("EvaluatePerSite(nil target) succeeded")
	}
}

package predict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
)

func sites(n int) []isa.BranchSite {
	out := make([]isa.BranchSite, n)
	for i := range out {
		out[i] = isa.BranchSite{ID: i, LoopBack: i%3 == 0}
	}
	return out
}

func profile(taken, total []uint64) *ifprob.Profile {
	return &ifprob.Profile{Program: "p", Dataset: "d", Taken: taken, Total: total}
}

func TestFromProfileMajority(t *testing.T) {
	p := profile([]uint64{9, 1, 5, 0}, []uint64{10, 10, 10, 0})
	pr, err := FromProfile(p, sites(4), AlwaysNotTaken)
	if err != nil {
		t.Fatal(err)
	}
	want := []Direction{Taken, NotTaken, Taken /* ties go taken */, NotTaken /* fallback */}
	for i, d := range want {
		if pr.Dir[i] != d {
			t.Errorf("site %d = %v, want %v", i, pr.Dir[i], d)
		}
	}
	if pr.FromProfile[3] {
		t.Error("unseen site marked as profiled")
	}
	if !pr.FromProfile[0] {
		t.Error("seen site not marked as profiled")
	}
}

func TestHeuristics(t *testing.T) {
	ss := sites(6)
	pr := FromHeuristic(ss, LoopHeuristic)
	for i, s := range ss {
		want := NotTaken
		if s.LoopBack {
			want = Taken
		}
		if pr.Dir[i] != want {
			t.Errorf("site %d = %v, want %v", i, pr.Dir[i], want)
		}
	}
	if d := AlwaysTaken(ss[1]); d != Taken {
		t.Errorf("AlwaysTaken = %v", d)
	}
	if d := AlwaysNotTaken(ss[0]); d != NotTaken {
		t.Errorf("AlwaysNotTaken = %v", d)
	}
}

func TestEvaluateCountsMispredicts(t *testing.T) {
	target := profile([]uint64{8, 2}, []uint64{10, 10})
	pr := &Prediction{Dir: []Direction{Taken, Taken}, FromProfile: []bool{true, true}}
	ev, err := Evaluate(pr, target)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Executed != 20 {
		t.Errorf("executed = %d", ev.Executed)
	}
	// site 0 predicted taken: 2 misses; site 1 predicted taken: 8 misses
	if ev.Mispredicts != 10 {
		t.Errorf("mispredicts = %d, want 10", ev.Mispredicts)
	}
	if ev.PercentCorrect() != 0.5 {
		t.Errorf("percent = %v", ev.PercentCorrect())
	}
}

func TestCombineScaledEqualizesDatasets(t *testing.T) {
	// Dataset A is tiny but consistent (taken); dataset B is huge and
	// opposite (not taken). Unscaled lets B win; scaled splits evenly
	// and a third small dataset breaks the tie.
	a := profile([]uint64{10}, []uint64{10})
	b := profile([]uint64{0}, []uint64{100000})
	c := profile([]uint64{4}, []uint64{5})
	ss := sites(1)
	ss[0].LoopBack = false

	un, err := Combine([]*ifprob.Profile{a, b, c}, Unscaled, ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Dir[0] != NotTaken {
		t.Error("unscaled should let the long run dominate (not taken)")
	}
	sc, err := Combine([]*ifprob.Profile{a, b, c}, Scaled, ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Dir[0] != Taken {
		t.Error("scaled should weight datasets equally (taken wins 2:1)")
	}
	po, err := Combine([]*ifprob.Profile{a, b, c}, Polling, ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if po.Dir[0] != Taken {
		t.Error("polling should count votes (2 taken vs 1 not)")
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine(nil, Scaled, sites(1), nil); err == nil {
		t.Error("combining zero profiles should fail")
	}
	a := profile([]uint64{1}, []uint64{1})
	if _, err := Combine([]*ifprob.Profile{a}, Scaled, sites(2), nil); err == nil {
		t.Error("site count mismatch should fail")
	}
	if _, err := Evaluate(&Prediction{Dir: make([]Direction, 3)}, a); err == nil {
		t.Error("evaluate with mismatched sites should fail")
	}
}

// TestSelfPredictionOptimal is the key property: predicting each
// branch in its own majority direction minimizes mispredicts, so no
// other static prediction can beat the self oracle.
func TestSelfPredictionOptimal(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%20) + 1
		taken := make([]uint64, k)
		total := make([]uint64, k)
		for i := range total {
			total[i] = uint64(rng.Intn(1000))
			if total[i] > 0 {
				taken[i] = uint64(rng.Intn(int(total[i] + 1)))
			}
		}
		target := profile(taken, total)
		ss := sites(k)
		self, err := FromProfile(target, ss, nil)
		if err != nil {
			return false
		}
		selfEval, err := Evaluate(self, target)
		if err != nil {
			return false
		}
		// Compare against random predictions.
		for trial := 0; trial < 20; trial++ {
			pr := &Prediction{Dir: make([]Direction, k), FromProfile: make([]bool, k)}
			for i := range pr.Dir {
				if rng.Intn(2) == 1 {
					pr.Dir[i] = Taken
				}
			}
			ev, err := Evaluate(pr, target)
			if err != nil {
				return false
			}
			if ev.Mispredicts < selfEval.Mispredicts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEvaluateConservation: correct + mispredicted = executed, under
// arbitrary profiles and predictions.
func TestEvaluateConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(30) + 1
		taken := make([]uint64, k)
		total := make([]uint64, k)
		pr := &Prediction{Dir: make([]Direction, k), FromProfile: make([]bool, k)}
		for i := 0; i < k; i++ {
			total[i] = uint64(rng.Intn(500))
			if total[i] > 0 {
				taken[i] = uint64(rng.Intn(int(total[i] + 1)))
			}
			if rng.Intn(2) == 1 {
				pr.Dir[i] = Taken
			}
		}
		ev, err := Evaluate(pr, profile(taken, total))
		if err != nil {
			return false
		}
		return ev.Correct()+ev.Mispredicts == ev.Executed && ev.Mispredicts <= ev.Executed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScaledSumScaleInvariance: multiplying one dataset's counts by a
// constant must not change the scaled-sum prediction.
func TestScaledSumScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10) + 1
		mk := func() *ifprob.Profile {
			taken := make([]uint64, k)
			total := make([]uint64, k)
			for i := 0; i < k; i++ {
				total[i] = uint64(rng.Intn(50) + 1)
				taken[i] = uint64(rng.Intn(int(total[i] + 1)))
			}
			return profile(taken, total)
		}
		a, b := mk(), mk()
		scale := uint64(rng.Intn(100) + 2)
		b2 := b.Clone()
		for i := range b2.Total {
			b2.Taken[i] *= scale
			b2.Total[i] *= scale
		}
		ss := sites(k)
		p1, err := Combine([]*ifprob.Profile{a, b}, Scaled, ss, nil)
		if err != nil {
			return false
		}
		p2, err := Combine([]*ifprob.Profile{a, b2}, Scaled, ss, nil)
		if err != nil {
			return false
		}
		for i := range p1.Dir {
			if p1.Dir[i] != p2.Dir[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvaluatePerSite(t *testing.T) {
	target := profile([]uint64{3, 7}, []uint64{10, 10})
	ss := sites(2)
	pr := &Prediction{Dir: []Direction{NotTaken, NotTaken}, FromProfile: []bool{true, true}}
	per, err := EvaluatePerSite(pr, target, ss)
	if err != nil {
		t.Fatal(err)
	}
	if per[0].Mispredicts != 3 || per[1].Mispredicts != 7 {
		t.Errorf("per-site mispredicts = %d/%d, want 3/7", per[0].Mispredicts, per[1].Mispredicts)
	}
}

func TestModeAndDirectionStrings(t *testing.T) {
	if Scaled.String() != "scaled" || Unscaled.String() != "unscaled" || Polling.String() != "polling" {
		t.Error("mode names wrong")
	}
	if Taken.String() != "taken" || NotTaken.String() != "not-taken" {
		t.Error("direction names wrong")
	}
}

// Package shardstore is the sharded store.Store implementation: the
// profile keyspace consistent-hashed across N shard directories, each
// an independently persisted ifprob database with its own advisory
// flock, checksummed atomic save, and circuit breaker. Because
// profile merges commute (the CRDT property the paper's accumulating
// counters already had), shards never need cross-shard coordination:
// a merge touches exactly one shard, saves touch only dirty shards,
// and a hot or corrupt shard degrades alone while the rest keep
// serving.
//
// On-disk layout under the store root:
//
//	<root>/MANIFEST.json          shard count + hash scheme (pinned)
//	<root>/shard-000/profiles.json
//	<root>/shard-000/profiles.json.lock
//	<root>/shard-001/...
//
// Opening a path that holds a legacy single-file database migrates it
// in place: the profiles are resharded once into a staging directory,
// the original file is preserved as <path>.pre-shard, and the staging
// directory is renamed over the path. See docs/STORE.md.
package shardstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"branchprof/internal/circuit"
	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"
)

func init() {
	store.Register("shard", func(ctx context.Context, path string, opts store.Options) (store.Store, []string, error) {
		return Open(ctx, path, opts)
	})
}

const (
	manifestVersion = 1
	defaultShards   = 8
	maxShards       = 512
	defaultVNodes   = 64
	shardFileName   = "profiles.json"
)

// manifest pins the store's shape. Every process opening the same
// root must derive the identical key → shard mapping, so the shard
// count and hash scheme live on disk, not in flags.
type manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	VNodes  int    `json:"vnodes"`
	Hash    string `json:"hash"`
}

// shard is one independently persisted slice of the keyspace. The db
// pointer is guarded by dbMu only for the swap in Load — the database
// itself is concurrency-safe. saveMu serializes this shard's saves
// without blocking concurrent merges: Save clears dirty before
// writing and re-raises it on failure, so a merge landing mid-save is
// never lost, only deferred to the next save.
type shard struct {
	name string // "shard-000"
	path string // <root>/shard-000/profiles.json

	brk *circuit.Breaker

	dbMu sync.RWMutex
	db   *ifprob.DB

	saveMu sync.Mutex
	dirty  atomic.Bool

	saves   atomic.Uint64
	errs    atomic.Uint64
	skipped atomic.Uint64
}

func (sh *shard) database() *ifprob.DB {
	sh.dbMu.RLock()
	defer sh.dbMu.RUnlock()
	return sh.db
}

func (sh *shard) setDB(db *ifprob.DB) {
	sh.dbMu.Lock()
	sh.db = db
	sh.dbMu.Unlock()
	sh.dirty.Store(false)
}

// Store is the sharded store. Construct with Open.
type Store struct {
	root   string
	ring   *ring
	shards []*shard
	faults *faults.Set
}

// Open opens (creating, or migrating a single-file database, as
// needed) the sharded store rooted at path. Returned warnings report
// quarantined corruption and completed migrations.
func Open(ctx context.Context, path string, opts store.Options) (*Store, []string, error) {
	if path == "" {
		return nil, nil, errors.New("shardstore: a sharded store needs a path")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var warns []string
	fi, err := os.Stat(path)
	switch {
	case err == nil && !fi.IsDir():
		// A legacy single-file database: reshard it once.
		w, merr := migrate(path, opts)
		warns = append(warns, w...)
		if merr != nil {
			return nil, warns, merr
		}
	case err == nil && fi.IsDir():
		// Existing store root (or an empty directory to initialize).
	case errors.Is(err, fs.ErrNotExist):
		if err := os.MkdirAll(path, 0o755); err != nil {
			return nil, warns, fmt.Errorf("shardstore: creating %s: %w", path, err)
		}
	default:
		return nil, warns, fmt.Errorf("shardstore: probing %s: %w", path, err)
	}

	m, err := loadOrInitManifest(path, opts.Shards, opts.Faults)
	if err != nil {
		return nil, warns, err
	}
	s := &Store{
		root:   path,
		ring:   newRing(m.Shards, m.VNodes),
		shards: make([]*shard, m.Shards),
		faults: opts.Faults,
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	for i := range s.shards {
		name := shardName(i)
		s.shards[i] = &shard{
			name: name,
			path: filepath.Join(path, name, shardFileName),
			brk:  circuit.New(opts.BreakerThreshold, opts.BreakerCooldown, now),
		}
	}
	for _, sh := range s.shards {
		db, warn, err := loadShardFile(sh.path, s.faults)
		if err != nil {
			return nil, warns, err
		}
		if warn != "" {
			warns = append(warns, warn)
		}
		db.SetFaults(s.faults)
		sh.setDB(db)
	}
	return s, warns, nil
}

// ManifestShards reads the shard count pinned in root's manifest
// without creating, migrating, or locking anything — the read-only
// entry point offline audit tools (ifprobdb -verify) use to walk a
// store they must not mutate.
func ManifestShards(root string) (int, error) {
	mpath := filepath.Join(root, store.ManifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		return 0, fmt.Errorf("shardstore: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("shardstore: manifest %s: %w", mpath, err)
	}
	if m.Version != manifestVersion {
		return 0, fmt.Errorf("shardstore: manifest %s has version %d, want %d", mpath, m.Version, manifestVersion)
	}
	if m.Shards < 1 || m.Shards > maxShards {
		return 0, fmt.Errorf("shardstore: manifest %s is out of range (%d shards)", mpath, m.Shards)
	}
	return m.Shards, nil
}

// ShardFile returns shard i's profiles file under root — the on-disk
// layout contract, exported for the same audit tools.
func ShardFile(root string, i int) string {
	return filepath.Join(root, shardName(i), shardFileName)
}

// loadOrInitManifest reads the root manifest, writing a fresh one for
// a new (empty-of-manifest) root. The manifest's shard count wins
// over the requested one: resharding an existing store is a separate,
// explicit migration, not a flag change.
func loadOrInitManifest(root string, requested int, inj *faults.Set) (*manifest, error) {
	mpath := filepath.Join(root, store.ManifestName)
	data, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("shardstore: manifest %s: %w", mpath, err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("shardstore: manifest %s has version %d, want %d", mpath, m.Version, manifestVersion)
		}
		if m.Shards < 1 || m.Shards > maxShards || m.VNodes < 1 {
			return nil, fmt.Errorf("shardstore: manifest %s is out of range (%d shards, %d vnodes)", mpath, m.Shards, m.VNodes)
		}
		if m.Hash != "fnv64a" {
			return nil, fmt.Errorf("shardstore: manifest %s uses unsupported hash %q", mpath, m.Hash)
		}
		return &m, nil
	case errors.Is(err, fs.ErrNotExist):
		m := &manifest{Version: manifestVersion, Shards: requested, VNodes: defaultVNodes, Hash: "fnv64a"}
		if m.Shards <= 0 {
			m.Shards = defaultShards
		}
		if m.Shards > maxShards {
			return nil, fmt.Errorf("shardstore: %d shards exceeds the maximum of %d", m.Shards, maxShards)
		}
		if err := writeManifest(root, m, inj); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("shardstore: reading manifest: %w", err)
	}
}

// writeManifest writes the manifest atomically (temp + fsync + rename
// + directory fsync), the same crash discipline as the shard files
// themselves, consulting the fault set at stage db-save (label = the
// manifest's final path) so chaos tests can tear or fail the store's
// very first write. A torn write leaves truncated bytes only in the
// temp file and reports failure — the final path never holds a
// partial manifest, which is the property the regression test pins.
func writeManifest(root string, m *manifest, inj *faults.Set) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shardstore: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	mpath := filepath.Join(root, store.ManifestName)
	if err := inj.Fire(faults.DBSave, mpath); err != nil {
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	tmp, err := os.CreateTemp(root, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if n := inj.Torn(faults.DBSave, mpath, len(data)); n < len(data) {
		// Crash mid-write: the truncated bytes reach the medium (temp
		// file only — the rename never happens) and the writer dies.
		tmp.Write(data[:n])
		tmp.Sync()
		tmp.Close()
		return fmt.Errorf("shardstore: writing manifest %s: %w", mpath,
			&faults.InjectedError{Stage: faults.DBSave, Label: mpath})
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), mpath); err != nil {
		return fmt.Errorf("shardstore: writing manifest: %w", err)
	}
	// The rename is atomic but not durable until the directory entry
	// itself is synced — a crash after rename could otherwise revert
	// to a rootless store on some filesystems.
	if d, err := os.Open(root); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// migrate reshards a legacy single-file database found at path: build
// the complete sharded layout in a staging directory, preserve the
// original as path+".pre-shard", and rename the staging directory
// over path. A crash mid-migration leaves either the original file
// (staging orphaned, re-migrated on the next open) or the finished
// store; in the narrow window between the two renames the original is
// already safe under .pre-shard.
func migrate(path string, opts store.Options) ([]string, error) {
	backup := path + ".pre-shard"
	if _, err := os.Stat(backup); err == nil {
		return nil, fmt.Errorf("shardstore: refusing to migrate %s: %s already exists (move it aside first)", path, backup)
	}
	legacy, err := ifprob.LoadWith(path, opts.Faults)
	if errors.Is(err, ifprob.ErrCorrupt) {
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return nil, fmt.Errorf("shardstore: database %s is corrupt and cannot be quarantined: %v (load error: %w)", path, rerr, err)
		}
		if merr := os.MkdirAll(path, 0o755); merr != nil {
			return nil, fmt.Errorf("shardstore: creating %s after quarantine: %w", path, merr)
		}
		return []string{fmt.Sprintf("database %s was corrupt; quarantined to %s, starting empty", path, quarantine)}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shardstore: migrating %s: %w", path, err)
	}

	shards := opts.Shards
	if shards <= 0 {
		shards = defaultShards
	}
	if shards > maxShards {
		return nil, fmt.Errorf("shardstore: %d shards exceeds the maximum of %d", shards, maxShards)
	}
	staging := path + ".migrating"
	if err := os.RemoveAll(staging); err != nil {
		return nil, fmt.Errorf("shardstore: clearing staging %s: %w", staging, err)
	}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return nil, fmt.Errorf("shardstore: staging %s: %w", staging, err)
	}
	m := &manifest{Version: manifestVersion, Shards: shards, VNodes: defaultVNodes, Hash: "fnv64a"}
	if err := writeManifest(staging, m, opts.Faults); err != nil {
		return nil, err
	}
	r := newRing(m.Shards, m.VNodes)
	dbs := make([]*ifprob.DB, shards)
	for i := range dbs {
		dbs[i] = ifprob.NewDB()
	}
	for _, key := range legacy.Programs() {
		if err := dbs[r.pick(key)].Add(legacy.Get(key)); err != nil {
			return nil, fmt.Errorf("shardstore: migrating %s: %w", key, err)
		}
	}
	for i, db := range dbs {
		if err := db.Save(filepath.Join(staging, shardName(i), shardFileName)); err != nil {
			return nil, fmt.Errorf("shardstore: migrating %s: %w", path, err)
		}
	}
	if err := os.Rename(path, backup); err != nil {
		return nil, fmt.Errorf("shardstore: preserving %s: %w", path, err)
	}
	if err := os.Rename(staging, path); err != nil {
		return nil, fmt.Errorf("shardstore: installing migrated store at %s: %w", path, err)
	}
	return []string{fmt.Sprintf("migrated single-file database into %d shards at %s; original preserved at %s",
		shards, path, backup)}, nil
}

// loadShardFile reads one shard file. A missing file is an empty
// shard; a corrupt one is quarantined to <file>.corrupt and restarted
// empty — that shard alone loses its (recoverable, still-on-disk)
// state while the others load normally.
func loadShardFile(path string, inj *faults.Set) (*ifprob.DB, string, error) {
	db, err := ifprob.LoadWith(path, inj)
	switch {
	case err == nil:
		return db, "", nil
	case errors.Is(err, fs.ErrNotExist):
		return ifprob.NewDB(), "", nil
	case errors.Is(err, ifprob.ErrCorrupt):
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return nil, "", fmt.Errorf("shardstore: shard %s is corrupt and cannot be quarantined: %v (load error: %w)", path, rerr, err)
		}
		return ifprob.NewDB(), fmt.Sprintf("shard file %s was corrupt; quarantined to %s, shard starting empty", path, quarantine), nil
	default:
		return nil, "", fmt.Errorf("shardstore: loading shard %s: %w", path, err)
	}
}

// shardFor maps a key to its owning shard.
func (s *Store) shardFor(key string) *shard {
	return s.shards[s.ring.pick(key)]
}

// ShardName reports which shard directory owns key — exported for
// tests and operational tooling that need to aim at one shard.
func (s *Store) ShardName(key string) string { return s.shardFor(key).name }

// Get implements store.Store.
func (s *Store) Get(ctx context.Context, key string) (*ifprob.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.shardFor(key).database().Get(key), nil
}

// Merge implements store.Store: exactly one shard is touched and
// marked dirty.
func (s *Store) Merge(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sh := s.shardFor(p.Program)
	if err := sh.database().Add(p); err != nil {
		return fmt.Errorf("%w: %v", store.ErrConflict, err)
	}
	sh.dirty.Store(true)
	return nil
}

// Put implements store.Store: replace the profile under p.Program
// wholesale, marking its shard dirty.
func (s *Store) Put(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sh := s.shardFor(p.Program)
	sh.database().Put(p)
	sh.dirty.Store(true)
	return nil
}

// Delete implements store.Store: remove key from its shard, marking
// the shard dirty only when something was actually removed.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sh := s.shardFor(key)
	if sh.database().Remove(key) {
		sh.dirty.Store(true)
	}
	return nil
}

// Keys implements store.Store: the union of every shard's keys,
// sorted globally.
func (s *Store) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var keys []string
	for _, sh := range s.shards {
		keys = append(keys, sh.database().Programs()...)
	}
	sort.Strings(keys)
	return keys, nil
}

// Snapshot implements store.Store.
func (s *Store) Snapshot(ctx context.Context) (map[string]*ifprob.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]*ifprob.Profile)
	for _, sh := range s.shards {
		db := sh.database()
		for _, key := range db.Programs() {
			out[key] = db.Get(key)
		}
	}
	return out, nil
}

// Load implements store.Store: re-read every shard from disk,
// replacing the in-memory view. Corrupt shards error here (Open is
// the quarantining path).
func (s *Store) Load(ctx context.Context) error {
	for _, sh := range s.shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		db, err := ifprob.LoadWith(sh.path, s.faults)
		if errors.Is(err, fs.ErrNotExist) {
			db, err = ifprob.NewDB(), nil
		}
		if err != nil {
			return err
		}
		db.SetFaults(s.faults)
		sh.setDB(db)
	}
	return nil
}

// Save implements store.Store: persist the shards owning keys (every
// shard when keys is empty), skipping clean shards, routing each
// attempt through that shard's breaker. Failures are isolated — a
// shard that fails or is breaker-skipped does not stop the others —
// and the aggregate error wraps ErrDegraded when any shard was
// breaker-skipped.
func (s *Store) Save(ctx context.Context, keys ...string) error {
	selected := s.shards
	if len(keys) > 0 {
		seen := make(map[*shard]bool, len(keys))
		var picked []*shard
		for _, key := range keys {
			sh := s.shardFor(key)
			if !seen[sh] {
				seen[sh] = true
				picked = append(picked, sh)
			}
		}
		// Deterministic save order regardless of key order.
		sort.Slice(picked, func(i, j int) bool { return picked[i].name < picked[j].name })
		selected = picked
	}
	var failed, skipped []string
	var firstErr error
	for _, sh := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		sh.saveMu.Lock()
		if !sh.dirty.Load() {
			sh.saveMu.Unlock()
			continue
		}
		if !sh.brk.Allow() {
			sh.skipped.Add(1)
			skipped = append(skipped, sh.name)
			sh.saveMu.Unlock()
			continue
		}
		// Clear dirty before the write: a merge landing mid-save
		// re-raises it, so its data is deferred to the next save rather
		// than silently considered durable.
		sh.dirty.Store(false)
		err := sh.database().Save(sh.path)
		sh.brk.Record(err)
		if err != nil {
			sh.dirty.Store(true)
			sh.errs.Add(1)
			failed = append(failed, sh.name)
			if firstErr == nil {
				firstErr = err
			}
		} else {
			sh.saves.Add(1)
		}
		sh.saveMu.Unlock()
	}
	switch {
	case len(failed) > 0 && len(skipped) > 0:
		return fmt.Errorf("shardstore: shards %s failed (%v); shards %s skipped: %w",
			strings.Join(failed, ","), firstErr, strings.Join(skipped, ","), store.ErrDegraded)
	case len(failed) > 0:
		return fmt.Errorf("shardstore: shards %s failed to save: %w", strings.Join(failed, ","), firstErr)
	case len(skipped) > 0:
		return fmt.Errorf("shardstore: shards %s skipped by open breaker: %w", strings.Join(skipped, ","), store.ErrDegraded)
	}
	return nil
}

// SaveGroup implements store.Checkpointed: a key's unit of atomic
// persistence is its shard.
func (s *Store) SaveGroup(key string) string { return s.shardFor(key).name }

// WALCheckpoint implements store.Checkpointed.
func (s *Store) WALCheckpoint(key string) uint64 {
	return s.shardFor(key).database().WalSeq()
}

// StageWALCheckpoint implements store.Checkpointed: the watermark
// lands inside the shard's database file on its next Save, atomically
// with the data it describes.
func (s *Store) StageWALCheckpoint(key string, seq uint64) {
	sh := s.shardFor(key)
	sh.database().SetWalSeq(seq)
	sh.dirty.Store(true)
}

// Close implements store.Store. Unsaved changes are dropped by
// contract (callers Save first).
func (s *Store) Close(context.Context) error { return nil }

// Stats implements store.Store.
func (s *Store) Stats() store.Stats {
	st := store.Stats{
		Driver:     "shard",
		Persistent: true,
		Guarded:    true,
		Shards:     make([]store.ShardStats, len(s.shards)),
	}
	for i, sh := range s.shards {
		keys := len(sh.database().Programs())
		brk := sh.brk.State()
		st.Keys += keys
		st.Shards[i] = store.ShardStats{
			Name:        sh.name,
			Keys:        keys,
			Dirty:       sh.dirty.Load(),
			Saves:       sh.saves.Load(),
			SaveErrors:  sh.errs.Load(),
			SaveSkipped: sh.skipped.Load(),
			Breaker:     brk.String(),
		}
		if brk != circuit.Closed {
			st.Degraded = true
		}
	}
	return st
}

package shardstore

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring mapping keys to shard indices. Each
// shard contributes vnodes virtual points, hashed by name, so the
// keyspace splits evenly and — the property consistent hashing buys
// over key%N — growing the shard count in a future migration moves
// only ~1/N of the keys instead of reshuffling everything.
//
// The ring is immutable after construction: the shard count is pinned
// by the store manifest, so every process that opens the same store
// directory derives the identical key → shard mapping.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds the ring for shards × vnodes virtual points.
func newRing(shards, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", shardName(s), v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties broken by shard index so the mapping is deterministic
		// even in the astronomically unlikely collision case.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// pick returns the shard owning key: the first virtual point at or
// after the key's hash, wrapping past the top of the ring.
func (r *ring) pick(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hash64 is 64-bit FNV-1a, the manifest's "fnv64a" scheme.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// shardName formats a shard directory name. Three digits bound the
// supported shard count (maxShards) while keeping listings sorted.
func shardName(i int) string { return fmt.Sprintf("shard-%03d", i) }

package shardstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"branchprof/internal/circuit"
	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"
)

func mkProfile(key string, total uint64) *ifprob.Profile {
	return &ifprob.Profile{
		Program: key,
		Dataset: "ds",
		Taken:   []uint64{total / 2},
		Total:   []uint64{total},
		Instrs:  total,
	}
}

func openShards(t *testing.T, path string, opts store.Options) *Store {
	t.Helper()
	s, warns, err := Open(context.Background(), path, opts)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if len(warns) != 0 {
		t.Fatalf("open %s: unexpected warnings %v", path, warns)
	}
	return s
}

// TestRingDeterministicAndBalanced: two rings with the same shape map
// every key identically, and the keyspace spreads over all shards.
func TestRingDeterministicAndBalanced(t *testing.T) {
	const shards = 8
	r1 := newRing(shards, defaultVNodes)
	r2 := newRing(shards, defaultVNodes)
	counts := make([]int, shards)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("prog%04d@ds%d", i, i%3)
		a, b := r1.pick(key), r2.pick(key)
		if a != b {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no keys: %v", s, counts)
		}
		// With 64 vnodes/shard the split is coarse but should stay
		// within a loose factor of the 250-key ideal.
		if n < 50 || n > 700 {
			t.Errorf("shard %d owns %d of 2000 keys — badly skewed ring: %v", s, n, counts)
		}
	}
}

// TestManifestPinsShardCount: the on-disk manifest wins over whatever
// shard count a later opener asks for, so every process derives the
// same key → shard mapping.
func TestManifestPinsShardCount(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.d")
	s := openShards(t, path, store.Options{Shards: 4})
	if err := s.Merge(ctx, mkProfile("prog@ds", 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := openShards(t, path, store.Options{Shards: 16})
	if got := len(s2.Stats().Shards); got != 4 {
		t.Fatalf("reopen with Shards:16 produced %d shards, want the manifest's 4", got)
	}
	if p, err := s2.Get(ctx, "prog@ds"); err != nil || p == nil || p.Total[0] != 10 {
		t.Fatalf("reopened store lost the profile: %v, %v", p, err)
	}
}

// twoShardKeys returns keys that land on two different shards of s.
func twoShardKeys(t *testing.T, s *Store) (a, b string) {
	t.Helper()
	a = "prog00@ds"
	for i := 1; i < 200; i++ {
		k := fmt.Sprintf("prog%02d@ds", i)
		if s.ShardName(k) != s.ShardName(a) {
			return a, k
		}
	}
	t.Fatal("could not find keys on two distinct shards")
	return "", ""
}

// TestCorruptShardQuarantine: corruption of one shard file is
// quarantined on open; that shard alone restarts empty while every
// other shard's data survives.
func TestCorruptShardQuarantine(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.d")
	s := openShards(t, path, store.Options{Shards: 4})
	keyA, keyB := twoShardKeys(t, s)
	for _, k := range []string{keyA, keyB} {
		if err := s.Merge(ctx, mkProfile(k, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(ctx); err != nil {
		t.Fatal(err)
	}

	// Flip bytes in keyA's shard file.
	victim := filepath.Join(path, s.ShardName(keyA), shardFileName)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, warns, err := Open(ctx, path, store.Options{})
	if err != nil {
		t.Fatalf("open with corrupt shard: %v", err)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "quarantined") || !strings.Contains(warns[0], s.ShardName(keyA)) {
		t.Fatalf("warnings = %v, want one quarantine notice naming %s", warns, s.ShardName(keyA))
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Fatalf("corrupt shard file not preserved: %v", err)
	}
	if p, _ := s2.Get(ctx, keyA); p != nil {
		t.Fatal("corrupt shard did not restart empty")
	}
	if p, _ := s2.Get(ctx, keyB); p == nil || p.Total[0] != 10 {
		t.Fatalf("healthy shard lost its data: %v", p)
	}
}

// TestPerShardBreakerIsolation: a fault targeting one shard's save
// path opens only that shard's breaker. The healthy shard keeps
// persisting; the sick one is skipped (ErrDegraded) until its
// cooldown lets a probe through, after which it recovers.
func TestPerShardBreakerIsolation(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.d")
	probe := openShards(t, path, store.Options{Shards: 4})
	keyA, keyB := twoShardKeys(t, probe)
	sickShard := probe.ShardName(keyA)

	// Fail every save touching the sick shard's path (the db-save fault
	// label is the save path, which contains the shard directory name).
	// The shard is healed explicitly below.
	inj := faults.NewSet(1, faults.Rule{Stage: faults.DBSave, Label: sickShard})
	clk := time.Unix(1000, 0)
	now := func() time.Time { return clk }
	s := openShards(t, path, store.Options{
		Shards:           4,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Faults:           inj,
		Now:              now,
	})

	merge := func(k string, v uint64) {
		t.Helper()
		if err := s.Merge(ctx, mkProfile(k, v)); err != nil {
			t.Fatal(err)
		}
	}

	// Two failing saves trip the sick shard's breaker; keyB's shard
	// saves fine both times.
	for i := 0; i < 2; i++ {
		merge(keyA, 10)
		merge(keyB, 10)
		err := s.Save(ctx)
		if err == nil || !strings.Contains(err.Error(), sickShard) {
			t.Fatalf("save %d: %v, want failure naming %s", i, err, sickShard)
		}
		if errors.Is(err, store.ErrDegraded) {
			t.Fatalf("save %d: real failures must not read as breaker skips: %v", i, err)
		}
	}

	st := s.Stats()
	if !st.Degraded || !st.Guarded {
		t.Fatalf("stats after breaker trip = %+v", st)
	}
	var sick, healthy *store.ShardStats
	for i := range st.Shards {
		switch st.Shards[i].Name {
		case sickShard:
			sick = &st.Shards[i]
		case probe.ShardName(keyB):
			healthy = &st.Shards[i]
		}
	}
	if sick == nil || sick.Breaker != circuit.Open.String() || sick.SaveErrors != 2 || !sick.Dirty {
		t.Fatalf("sick shard stats = %+v", sick)
	}
	if healthy == nil || healthy.Breaker != circuit.Closed.String() || healthy.Saves != 2 || healthy.Dirty {
		t.Fatalf("healthy shard stats = %+v", healthy)
	}

	// While open, saves touching the sick shard are skipped with
	// ErrDegraded — and the healthy shard still persists its new data.
	merge(keyA, 5)
	merge(keyB, 5)
	if err := s.Save(ctx); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("save under open breaker: %v, want ErrDegraded", err)
	}
	if got := s.Stats(); shardByName(got, sickShard).SaveSkipped != 1 {
		t.Fatalf("sick shard not skipped: %+v", shardByName(got, sickShard))
	}

	// Saving only the healthy shard's keys succeeds outright.
	merge(keyB, 5)
	if err := s.Save(ctx, keyB); err != nil {
		t.Fatalf("save scoped to healthy shard: %v", err)
	}

	// Heal the medium, let the cooldown elapse: the half-open probe
	// goes through and the sick shard recovers — the deferred merges
	// finally persist.
	s.shardFor(keyA).database().SetFaults(nil)
	clk = clk.Add(1100 * time.Millisecond)
	if err := s.Save(ctx); err != nil {
		t.Fatalf("save after cooldown: %v", err)
	}
	if got := s.Stats(); got.Degraded {
		t.Fatalf("still degraded after recovery: %+v", got)
	}

	// Nothing was lost across the degraded window: a fresh open sees
	// the full accumulation for both keys.
	s2, warns, err := Open(ctx, path, store.Options{})
	if err != nil || len(warns) != 0 {
		t.Fatalf("reopen: %v, warns %v", err, warns)
	}
	if p, _ := s2.Get(ctx, keyA); p == nil || p.Total[0] != 25 {
		t.Fatalf("keyA after recovery = %+v, want Total[0]=25", p)
	}
	if p, _ := s2.Get(ctx, keyB); p == nil || p.Total[0] != 30 {
		t.Fatalf("keyB after recovery = %+v, want Total[0]=30", p)
	}
}

func shardByName(st store.Stats, name string) store.ShardStats {
	for _, sh := range st.Shards {
		if sh.Name == name {
			return sh
		}
	}
	return store.ShardStats{}
}

// TestSaveScopesToKeyShards: Save(keys...) writes only the shards
// owning those keys, leaving other dirty shards untouched on disk.
func TestSaveScopesToKeyShards(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.d")
	s := openShards(t, path, store.Options{Shards: 4})
	keyA, keyB := twoShardKeys(t, s)
	for _, k := range []string{keyA, keyB} {
		if err := s.Merge(ctx, mkProfile(k, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(path, s.ShardName(keyA), shardFileName)); err != nil {
		t.Fatalf("selected shard not saved: %v", err)
	}
	if _, err := os.Stat(filepath.Join(path, s.ShardName(keyB), shardFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unselected shard was written: %v", err)
	}
	st := s.Stats()
	if sh := shardByName(st, s.ShardName(keyB)); !sh.Dirty {
		t.Fatalf("unselected shard lost its dirty flag: %+v", sh)
	}
}

// TestManifestTornWriteAtomic: a torn write while creating the very
// first MANIFEST.json must fail the open without leaving a corrupt
// manifest at the final path — the next open starts clean.
func TestManifestTornWriteAtomic(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.d")
	fs := faults.NewSet(1, faults.Rule{Stage: faults.DBSave, Kind: faults.TornWrite, Label: store.ManifestName})
	if _, _, err := Open(ctx, path, store.Options{Shards: 4, Faults: fs}); !faults.Is(err) {
		t.Fatalf("open with torn manifest write = %v, want injected error", err)
	}
	if _, err := os.Stat(filepath.Join(path, store.ManifestName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("final manifest path exists after torn write: %v", err)
	}

	// The failed creation left no poison: a clean open succeeds and
	// pins its own shard count.
	s := openShards(t, path, store.Options{Shards: 4})
	if err := s.Merge(ctx, mkProfile("prog@ds", 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(ctx); err != nil {
		t.Fatal(err)
	}
	s2 := openShards(t, path, store.Options{Shards: 16})
	if got := len(s2.Stats().Shards); got != 4 {
		t.Fatalf("recovered store has %d shards, want 4", got)
	}
}

// TestManifestSaveFaultInjectable: the manifest write participates in
// DBSave fault injection like any other persistence point.
func TestManifestSaveFaultInjectable(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.d")
	fs := faults.NewSet(1, faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Label: store.ManifestName})
	if _, _, err := Open(ctx, path, store.Options{Shards: 4, Faults: fs}); !faults.Is(err) {
		t.Fatalf("open with failing manifest write = %v, want injected error", err)
	}
}

// Package memstore is the reference store.Store implementation: the
// repository's original single ifprob.DB behind the pluggable
// interface, optionally persisted to one checksummed, atomically
// written JSON file. It exists both as the production path for small
// deployments and as the oracle the sharded store is differentially
// tested against — any operation sequence must leave memstore and
// shardstore with identical snapshots.
//
// memstore is unguarded (Stats().Guarded == false): it performs no
// failure isolation of its own, preserving the pre-shard contract in
// which the caller (branchprofd) wraps Save in its circuit breaker.
package memstore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"
)

func init() {
	store.Register("mem", func(ctx context.Context, path string, opts store.Options) (store.Store, []string, error) {
		return Open(ctx, path, opts)
	})
}

// Store is the single-file store. Construct with Open.
type Store struct {
	path   string
	faults *faults.Set

	mu    sync.Mutex
	db    *ifprob.DB
	dirty bool

	saves    uint64
	saveErrs uint64
}

// Open loads the store persisted at path (empty path = in-memory
// only). A missing file starts empty; a corrupt one is quarantined to
// path+".corrupt" — preserving the evidence, starting empty, and
// saying so in the returned warnings — rather than refusing to open.
func Open(_ context.Context, path string, opts store.Options) (*Store, []string, error) {
	s := &Store{path: path, faults: opts.Faults, db: ifprob.NewDB()}
	s.db.SetFaults(opts.Faults)
	if path == "" {
		return s, nil, nil
	}
	db, err := ifprob.LoadWith(path, opts.Faults)
	switch {
	case err == nil:
		db.SetFaults(opts.Faults)
		s.db = db
	case errors.Is(err, fs.ErrNotExist):
		// First run: start empty, create the file on first Save.
	case errors.Is(err, ifprob.ErrCorrupt):
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return nil, nil, fmt.Errorf("store: database %s is corrupt and cannot be quarantined: %v (load error: %w)", path, rerr, err)
		}
		return s, []string{fmt.Sprintf("database %s was corrupt; quarantined to %s, starting empty", path, quarantine)}, nil
	default:
		return nil, nil, fmt.Errorf("store: loading database: %w", err)
	}
	return s, nil, nil
}

// Get implements store.Store.
func (s *Store) Get(ctx context.Context, key string) (*ifprob.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Get(key), nil
}

// Merge implements store.Store.
func (s *Store) Merge(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.db.Add(p); err != nil {
		return fmt.Errorf("%w: %v", store.ErrConflict, err)
	}
	s.dirty = true
	return nil
}

// Put implements store.Store.
func (s *Store) Put(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.Put(p)
	s.dirty = true
	return nil
}

// Delete implements store.Store.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db.Remove(key) {
		s.dirty = true
	}
	return nil
}

// Keys implements store.Store.
func (s *Store) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Programs(), nil
}

// Snapshot implements store.Store.
func (s *Store) Snapshot(ctx context.Context) (map[string]*ifprob.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*ifprob.Profile)
	for _, key := range s.db.Programs() {
		out[key] = s.db.Get(key)
	}
	return out, nil
}

// Load implements store.Store: re-read the persisted file, replacing
// the in-memory view. With no path the store resets to empty.
func (s *Store) Load(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		s.db = ifprob.NewDB()
		s.db.SetFaults(s.faults)
		s.dirty = false
		return nil
	}
	db, err := ifprob.LoadWith(s.path, s.faults)
	if errors.Is(err, fs.ErrNotExist) {
		db, err = ifprob.NewDB(), nil
	}
	if err != nil {
		return err
	}
	db.SetFaults(s.faults)
	s.db = db
	s.dirty = false
	return nil
}

// Save implements store.Store. The whole database lives in one file,
// so the keys selector is irrelevant: any dirtiness saves everything.
func (s *Store) Save(ctx context.Context, _ ...string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" || !s.dirty {
		return nil
	}
	if err := s.db.Save(s.path); err != nil {
		s.saveErrs++
		return err
	}
	s.saves++
	s.dirty = false
	return nil
}

// SaveGroup implements store.Checkpointed: one file, one group.
func (s *Store) SaveGroup(string) string { return "" }

// WALCheckpoint implements store.Checkpointed.
func (s *Store) WALCheckpoint(string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.WalSeq()
}

// StageWALCheckpoint implements store.Checkpointed. The watermark is
// persisted inside the database file by the next Save.
func (s *Store) StageWALCheckpoint(_ string, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.SetWalSeq(seq)
	s.dirty = true
}

// Close implements store.Store. Nothing to release; unsaved changes
// are dropped by contract (callers Save first).
func (s *Store) Close(context.Context) error { return nil }

// Stats implements store.Store.
func (s *Store) Stats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return store.Stats{
		Driver:     "mem",
		Persistent: s.path != "",
		Keys:       len(s.db.Programs()),
	}
}

// DB exposes the underlying database for legacy callers (the CLI
// tools' dump/annotate paths) that want ifprob-level access.
func (s *Store) DB() *ifprob.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db
}

package replstore_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"branchprof/internal/ifprob"
	"branchprof/internal/store"
	_ "branchprof/internal/store/memstore"
	"branchprof/internal/store/replstore"
	_ "branchprof/internal/store/shardstore"
)

func mkProfile(key, dataset string, taken, total []uint64) *ifprob.Profile {
	return &ifprob.Profile{
		Program: key,
		Dataset: dataset,
		Taken:   append([]uint64(nil), taken...),
		Total:   append([]uint64(nil), total...),
		Instrs:  100,
	}
}

// node is one in-process replica for unit tests.
type node struct {
	id string
	rs *replstore.Store
}

func newNode(t *testing.T, id string) *node {
	t.Helper()
	ctx := context.Background()
	inner, _, err := store.Open(ctx, "", store.Options{})
	if err != nil {
		t.Fatalf("open inner: %v", err)
	}
	rs, _, err := replstore.Wrap(ctx, inner, replstore.Config{Self: id})
	if err != nil {
		t.Fatalf("wrap %s: %v", id, err)
	}
	t.Cleanup(func() { rs.Close(ctx) })
	return &node{id: id, rs: rs}
}

// pullFrom runs one anti-entropy pull: n pulls from peer whatever the
// peer's digest says n is missing or behind on. Returns components applied.
func (n *node) pullFrom(t *testing.T, peer *node) int {
	t.Helper()
	ctx := context.Background()
	refs := n.rs.Diff(peer.rs.Digest())
	comps, err := peer.rs.Fetch(ctx, refs)
	if err != nil {
		t.Fatalf("%s fetch from %s: %v", n.id, peer.id, err)
	}
	applied := 0
	for _, c := range comps {
		ok, err := n.rs.Apply(ctx, c)
		if err != nil {
			t.Fatalf("%s apply from %s: %v", n.id, peer.id, err)
		}
		if ok {
			applied++
		}
	}
	return applied
}

func syncAll(t *testing.T, nodes ...*node) {
	t.Helper()
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.pullFrom(t, b)
			}
		}
	}
}

func snapshotsEqual(t *testing.T, nodes ...*node) {
	t.Helper()
	ctx := context.Background()
	base, err := nodes[0].rs.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot %s: %v", nodes[0].id, err)
	}
	for _, n := range nodes[1:] {
		snap, err := n.rs.Snapshot(ctx)
		if err != nil {
			t.Fatalf("snapshot %s: %v", n.id, err)
		}
		if !reflect.DeepEqual(base, snap) {
			t.Fatalf("snapshots diverge between %s and %s:\n%v\nvs\n%v",
				nodes[0].id, n.id, base, snap)
		}
	}
}

func TestWrapRejectsBadOrigin(t *testing.T) {
	ctx := context.Background()
	for _, id := range []string{"", "a" + replstore.Sep + "b", strings.Repeat("x", 300)} {
		inner, _, err := store.Open(ctx, "", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := replstore.Wrap(ctx, inner, replstore.Config{Self: id}); err == nil {
			t.Errorf("Wrap accepted origin %q", id)
		}
	}
}

func TestMergeAndGetRoundTrip(t *testing.T) {
	ctx := context.Background()
	n := newNode(t, "node1")
	if err := n.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{3, 0}, []uint64{5, 2})); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := n.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1, 1}, []uint64{2, 2})); err != nil {
		t.Fatalf("merge 2: %v", err)
	}
	got, err := n.rs.Get(ctx, "p@d")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.Program != "p@d" {
		t.Errorf("Program = %q, want logical key", got.Program)
	}
	if want := []uint64{4, 1}; !reflect.DeepEqual(got.Taken, want) {
		t.Errorf("Taken = %v, want %v", got.Taken, want)
	}
	if got.Instrs != 200 {
		t.Errorf("Instrs = %d, want 200", got.Instrs)
	}
	keys, err := n.rs.Keys(ctx)
	if err != nil || !reflect.DeepEqual(keys, []string{"p@d"}) {
		t.Errorf("Keys = %v, %v; want [p@d]", keys, err)
	}
	if st := n.rs.Stats(); st.Keys != 1 || !strings.HasPrefix(st.Driver, "repl+") {
		t.Errorf("Stats = %+v; want 1 key, repl+ driver", st)
	}
}

func TestShapeConflictAcrossOrigins(t *testing.T) {
	ctx := context.Background()
	a, b := newNode(t, "a"), newNode(t, "b")
	if err := a.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1}, []uint64{1})); err != nil {
		t.Fatal(err)
	}
	b.pullFrom(t, a)
	// b now holds a's component with 1 site; a 2-site local ingest of the
	// same key must be rejected even though b has no own component yet.
	err := b.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1, 0}, []uint64{1, 1}))
	if !errors.Is(err, store.ErrConflict) {
		t.Fatalf("cross-origin shape conflict: err = %v, want ErrConflict", err)
	}
}

// TestConvergenceNoDoubleCount is the heart of the design: repeated,
// overlapping, bidirectional syncs must converge to bit-identical
// snapshots with every counter equal to the sum of unique local
// ingests — anti-entropy over components must not double-count the
// way naive profile re-merging would.
func TestConvergenceNoDoubleCount(t *testing.T) {
	ctx := context.Background()
	a, b, c := newNode(t, "a"), newNode(t, "b"), newNode(t, "c")
	nodes := []*node{a, b, c}

	// Each node ingests twice into the same key, interleaved with syncs
	// (so components replicate at several intermediate states).
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if err := n.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1, 2}, []uint64{3, 4})); err != nil {
				t.Fatalf("%s merge: %v", n.id, err)
			}
		}
		syncAll(t, nodes...)
		syncAll(t, nodes...) // resync of already-converged state must be harmless
	}
	snapshotsEqual(t, nodes...)

	got, err := a.rs.Get(ctx, "p@d")
	if err != nil {
		t.Fatal(err)
	}
	// 6 ingests total: 3 nodes × 2 rounds.
	if want := []uint64{6, 12}; !reflect.DeepEqual(got.Taken, want) {
		t.Errorf("Taken = %v, want %v (double-counted?)", got.Taken, want)
	}
	if want := []uint64{18, 24}; !reflect.DeepEqual(got.Total, want) {
		t.Errorf("Total = %v, want %v (double-counted?)", got.Total, want)
	}
	if got.Instrs != 600 {
		t.Errorf("Instrs = %d, want 600", got.Instrs)
	}

	// Convergence must be a fixed point: further syncs apply nothing.
	for _, x := range nodes {
		for _, y := range nodes {
			if x != y {
				if n := x.pullFrom(t, y); n != 0 {
					t.Errorf("converged %s still pulled %d components from %s", x.id, n, y.id)
				}
			}
		}
	}
}

func TestStaleComponentLoses(t *testing.T) {
	ctx := context.Background()
	a, b := newNode(t, "a"), newNode(t, "b")
	if err := a.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1}, []uint64{2})); err != nil {
		t.Fatal(err)
	}
	// b captures a's component now...
	stale, err := a.rs.Fetch(ctx, []replstore.Ref{{Key: "p@d", Origin: "a"}})
	if err != nil || len(stale) != 1 {
		t.Fatalf("fetch: %v (%d comps)", err, len(stale))
	}
	b.pullFrom(t, a)
	// ...a moves on...
	if err := a.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1}, []uint64{2})); err != nil {
		t.Fatal(err)
	}
	b.pullFrom(t, a)
	// ...and a replay of the stale snapshot must not roll b back.
	ok, err := b.rs.Apply(ctx, stale[0])
	if err != nil {
		t.Fatalf("apply stale: %v", err)
	}
	if ok {
		t.Fatal("stale component replaced a newer copy")
	}
	got, err := b.rs.Get(ctx, "p@d")
	if err != nil || got.Total[0] != 4 {
		t.Fatalf("after stale replay: Total = %v, err %v; want [4]", got, err)
	}
}

func TestApplyRejectsBadComponents(t *testing.T) {
	ctx := context.Background()
	n := newNode(t, "a")
	good := mkProfile("p@d", "d", []uint64{1}, []uint64{2})
	cases := []struct {
		name string
		c    replstore.Component
	}{
		{"self origin", replstore.Component{Key: "p@d", Origin: "a", Profile: good}},
		{"empty origin", replstore.Component{Key: "p@d", Origin: "", Profile: good}},
		{"separator in origin", replstore.Component{Key: "p@d", Origin: "x" + replstore.Sep, Profile: good}},
		{"nil profile", replstore.Component{Key: "p@d", Origin: "b"}},
		{"empty key", replstore.Component{Key: "", Origin: "b", Profile: good}},
		{"separator in key", replstore.Component{Key: "p" + replstore.Sep + "q", Origin: "b", Profile: good}},
		{"inconsistent profile", replstore.Component{Key: "p@d", Origin: "b",
			Profile: mkProfile("p@d", "d", []uint64{5}, []uint64{2})}},
	}
	for _, tc := range cases {
		if ok, err := n.rs.Apply(ctx, tc.c); err == nil {
			t.Errorf("%s: Apply accepted (ok=%v)", tc.name, ok)
		}
	}
	if keys, _ := n.rs.Keys(ctx); len(keys) != 0 {
		t.Errorf("rejected components left state behind: %v", keys)
	}
}

func TestDeleteIsLocalAndResurrects(t *testing.T) {
	ctx := context.Background()
	a, b := newNode(t, "a"), newNode(t, "b")
	if err := a.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1}, []uint64{2})); err != nil {
		t.Fatal(err)
	}
	b.pullFrom(t, a)
	if err := b.rs.Delete(ctx, "p@d"); err != nil {
		t.Fatal(err)
	}
	if got, err := b.rs.Get(ctx, "p@d"); err != nil || got != nil {
		t.Fatalf("after delete: %v, %v; want nil", got, err)
	}
	// No tombstones: the next pull resurrects the key from a.
	b.pullFrom(t, a)
	if got, err := b.rs.Get(ctx, "p@d"); err != nil || got == nil {
		t.Fatalf("after resync: %v, %v; want profile back", got, err)
	}
}

func TestOwedCountsHandoffBacklog(t *testing.T) {
	ctx := context.Background()
	a, b := newNode(t, "a"), newNode(t, "b")
	if err := a.rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1}, []uint64{2})); err != nil {
		t.Fatal(err)
	}
	if err := a.rs.Merge(ctx, mkProfile("q@d", "d", []uint64{1}, []uint64{2})); err != nil {
		t.Fatal(err)
	}
	if owed := a.rs.Owed(b.rs.Digest()); len(owed) != 2 {
		t.Fatalf("Owed before sync = %v, want 2 refs", owed)
	}
	b.pullFrom(t, a)
	if owed := a.rs.Owed(b.rs.Digest()); len(owed) != 0 {
		t.Fatalf("Owed after sync = %v, want none", owed)
	}
}

// TestWrapAdoptsPlainKeys verifies a pre-replication store's plain keys
// become this node's own components, once, durably.
func TestWrapAdoptsPlainKeys(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "db.json")
	inner, _, err := store.Open(ctx, path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Merge(ctx, mkProfile("old@d", "d", []uint64{7}, []uint64{9})); err != nil {
		t.Fatal(err)
	}
	if err := inner.Save(ctx); err != nil {
		t.Fatal(err)
	}

	rs, warns, err := replstore.Wrap(ctx, inner, replstore.Config{Self: "node1"})
	if err != nil {
		t.Fatalf("wrap: %v", err)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "adopted 1 pre-replication") {
		t.Errorf("warnings = %v, want adoption notice", warns)
	}
	got, err := rs.Get(ctx, "old@d")
	if err != nil || got == nil || got.Total[0] != 9 {
		t.Fatalf("adopted key: %v, %v", got, err)
	}
	d := rs.Digest()
	if _, ok := d["old@d"]["node1"]; !ok {
		t.Fatalf("digest = %v, want old@d owned by node1", d)
	}
	if err := rs.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Reopen: adoption persisted, no plain key left, no re-adoption.
	inner2, _, err := store.Open(ctx, path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs2, warns2, err := replstore.Wrap(ctx, inner2, replstore.Config{Self: "node1"})
	if err != nil {
		t.Fatalf("rewrap: %v", err)
	}
	defer rs2.Close(ctx)
	if len(warns2) != 0 {
		t.Errorf("second wrap warnings = %v, want none (adoption should be durable)", warns2)
	}
	got2, err := rs2.Get(ctx, "old@d")
	if err != nil || got2 == nil || got2.Total[0] != 9 {
		t.Fatalf("after reopen: %v, %v", got2, err)
	}
}

// TestShardedPersistenceRoundTrip runs a replica over the sharded
// driver, replicates a peer component in, saves by logical key, and
// reopens — both own and remote components must survive.
func TestShardedPersistenceRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "store")
	open := func() *replstore.Store {
		inner, _, err := store.Open(ctx, dir, store.Options{Shards: 4})
		if err != nil {
			t.Fatalf("open sharded: %v", err)
		}
		rs, _, err := replstore.Wrap(ctx, inner, replstore.Config{Self: "a"})
		if err != nil {
			t.Fatalf("wrap: %v", err)
		}
		return rs
	}

	rs := open()
	if err := rs.Merge(ctx, mkProfile("p@d", "d", []uint64{1}, []uint64{2})); err != nil {
		t.Fatal(err)
	}
	remote := replstore.Component{Key: "p@d", Origin: "b",
		Profile: mkProfile("p@d", "d", []uint64{4}, []uint64{8})}
	if ok, err := rs.Apply(ctx, remote); err != nil || !ok {
		t.Fatalf("apply remote: ok=%v err=%v", ok, err)
	}
	// Save by logical key: must cover BOTH origins' composite keys.
	if err := rs.Save(ctx, "p@d"); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := rs.Close(ctx); err != nil {
		t.Fatal(err)
	}

	rs2 := open()
	defer rs2.Close(ctx)
	got, err := rs2.Get(ctx, "p@d")
	if err != nil || got == nil {
		t.Fatalf("get after reopen: %v, %v", got, err)
	}
	if got.Total[0] != 10 || got.Taken[0] != 5 {
		t.Errorf("folded after reopen = taken %v total %v, want 5/10", got.Taken, got.Total)
	}
	d := rs2.Digest()
	if len(d["p@d"]) != 2 {
		t.Errorf("digest after reopen = %v, want components for a and b", d)
	}
}

// Package replstore is the peer-replication layer above the pluggable
// profile store: it wraps any store.Store (in production the sharded
// driver) and turns it into one replica of a branchprofd cluster that
// converges by gossip anti-entropy, with no coordinator and no
// cross-node locking.
//
// # Why components, not raw merges
//
// ifprob.Profile.Merge is commutative but NOT idempotent — counters
// add. Gossiping full accumulated profiles between replicas would
// double-count every round two nodes pulled each other's state
// concurrently. replstore therefore keeps the classic state-based
// counter-CRDT shape: every logical key ("program@dataset") is split
// into per-origin components, one per cluster node. A node only ever
// accumulates local ingest into its OWN component; peer components are
// replicated wholesale (replaced, never added). Because an origin's
// component only grows at the origin, any two copies of it are
// snapshots of one monotone chain, and the newer one simply wins.
//
// The winner between two copies of the same (key, origin) component is
// chosen by a deterministic total order — (score, content hash), where
// score is the monotone Instrs+Executed sum — so every replica
// comparing the same two candidates picks the same one. Component sets
// therefore converge under anti-entropy, and the served view (the fold
// of a key's components in sorted origin order via Profile.Merge) is a
// deterministic function of the component set: once component sets
// agree, every node's Snapshot is bit-identical.
//
// # Persistence
//
// Components live in the wrapped inner store under composite keys
// "origin\x1fkey" (the unit separator cannot appear in validated
// program/dataset names), so they inherit the inner driver's
// durability machinery unchanged — per-shard flocks, checksummed
// atomic saves, circuit breakers, quarantine. Plain (non-composite)
// keys found at wrap time — a store that predates replication — are
// adopted as this node's own component. See docs/STORE.md.
package replstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"branchprof/internal/ifprob"
	"branchprof/internal/store"
)

// Sep separates the origin from the logical key in inner-store keys.
// The unit separator is excluded from every validated name upstream,
// so the split is unambiguous.
const Sep = "\x1f"

// maxOriginLen bounds origin IDs (node names travel in digests and
// composite keys; a hostile peer must not inflate them).
const maxOriginLen = 128

// Meta is the digest entry for one component: enough to decide, without
// transferring the profile, whether a peer's copy is newer.
type Meta struct {
	// Score is the monotone size of the component: Instrs plus the sum
	// of per-site execution counts. A component only grows at its
	// origin, so of two copies the one with the larger score is the
	// later snapshot.
	Score uint64 `json:"score"`
	// Hash is the hex SHA-256 of the component profile's canonical
	// encoding — the identity check, and the deterministic tiebreak.
	Hash string `json:"hash"`
}

// beats reports whether a component with meta m should replace one
// with meta o — the deterministic total order every replica applies.
func (m Meta) beats(o Meta) bool {
	if m.Score != o.Score {
		return m.Score > o.Score
	}
	return m.Hash > o.Hash
}

// Digest is a replica's anti-entropy summary: logical key → origin →
// component meta.
type Digest map[string]map[string]Meta

// Ref names one component.
type Ref struct {
	Key    string `json:"key"`
	Origin string `json:"origin"`
}

// Component is one transferable unit of replicated state.
type Component struct {
	Key     string          `json:"key"`
	Origin  string          `json:"origin"`
	Profile *ifprob.Profile `json:"profile"`
}

// Config configures Wrap.
type Config struct {
	// Self is this node's origin ID. It must be stable across restarts
	// (persisted component keys embed it) and unique in the cluster —
	// two nodes sharing an origin would fight over one component and
	// lose counts. Required.
	Self string
}

// Store is one replica: a store.Store whose logical view is the fold
// of per-origin components held in the wrapped inner store. Construct
// with Wrap.
type Store struct {
	inner store.Store
	self  string

	mu     sync.Mutex
	metas  map[string]map[string]Meta // logical key → origin → meta
	merged map[string]*ifprob.Profile // fold cache, per logical key
}

// CheckOrigin validates an origin ID: non-empty, bounded, and free of
// the separator.
func CheckOrigin(origin string) error {
	if origin == "" {
		return errors.New("replstore: origin ID must not be empty")
	}
	if len(origin) > maxOriginLen {
		return fmt.Errorf("replstore: origin ID exceeds %d bytes", maxOriginLen)
	}
	if strings.Contains(origin, Sep) {
		return errors.New("replstore: origin ID must not contain the key separator")
	}
	return nil
}

// Wrap turns inner into a replica owned by cfg.Self. Existing plain
// keys in inner (pre-replication data) are adopted as Self's own
// component — merged into any existing Self component and deleted
// under their plain name — and the adoption is flushed through
// inner.Save so a crash cannot leave both forms. Warnings report the
// adoption; the inner store's own open-time warnings are the caller's.
func Wrap(ctx context.Context, inner store.Store, cfg Config) (*Store, []string, error) {
	if err := CheckOrigin(cfg.Self); err != nil {
		return nil, nil, err
	}
	s := &Store{
		inner:  inner,
		self:   cfg.Self,
		metas:  make(map[string]map[string]Meta),
		merged: make(map[string]*ifprob.Profile),
	}
	warns, err := s.rebuild(ctx)
	if err != nil {
		return nil, warns, err
	}
	return s, warns, nil
}

// Inner returns the wrapped store (operational tooling; the replica
// remains the owner of its contents).
func (s *Store) Inner() store.Store { return s.inner }

// Self returns this replica's origin ID.
func (s *Store) Self() string { return s.self }

// rebuild scans the inner store, reconstructing the component index
// and adopting plain pre-replication keys as Self components.
func (s *Store) rebuild(ctx context.Context) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metas = make(map[string]map[string]Meta)
	s.merged = make(map[string]*ifprob.Profile)
	keys, err := s.inner.Keys(ctx)
	if err != nil {
		return nil, err
	}
	var warns []string
	adopted := 0
	for _, k := range keys {
		origin, key, composite := splitKey(k)
		if !composite {
			// Pre-replication data: fold it into Self's component.
			p, err := s.inner.Get(ctx, k)
			if err != nil {
				return warns, err
			}
			if p == nil {
				continue
			}
			composite := compositeKey(s.self, k)
			own, err := s.inner.Get(ctx, composite)
			if err != nil {
				return warns, err
			}
			if own != nil {
				p.Program = own.Program
				if err := own.Merge(p); err != nil {
					return warns, fmt.Errorf("replstore: adopting pre-replication key %q: %w", k, err)
				}
				p = own
			} else {
				p.Program = composite
			}
			if err := s.inner.Put(ctx, p); err != nil {
				return warns, err
			}
			if err := s.inner.Delete(ctx, k); err != nil {
				return warns, err
			}
			origin, key = s.self, k
			adopted++
		}
		if err := s.refreshMetaLocked(ctx, key, origin); err != nil {
			return warns, err
		}
	}
	if adopted > 0 {
		if err := s.inner.Save(ctx); err != nil {
			return warns, fmt.Errorf("replstore: persisting adoption of %d pre-replication keys: %w", adopted, err)
		}
		warns = append(warns, fmt.Sprintf("adopted %d pre-replication keys as components of node %q", adopted, s.self))
	}
	return warns, nil
}

// refreshMetaLocked recomputes (key, origin)'s meta from the inner
// store, dropping it when the component is gone. Callers hold s.mu.
func (s *Store) refreshMetaLocked(ctx context.Context, key, origin string) error {
	p, err := s.inner.Get(ctx, compositeKey(origin, key))
	if err != nil {
		return err
	}
	delete(s.merged, key)
	if p == nil {
		if m := s.metas[key]; m != nil {
			delete(m, origin)
			if len(m) == 0 {
				delete(s.metas, key)
			}
		}
		return nil
	}
	m := s.metas[key]
	if m == nil {
		m = make(map[string]Meta)
		s.metas[key] = m
	}
	m[origin] = metaOf(p)
	return nil
}

// metaOf computes a component profile's digest meta.
func metaOf(p *ifprob.Profile) Meta {
	return Meta{Score: score(p), Hash: contentHash(p)}
}

// score is the monotone size of a component. Every ingested run
// contributes at least one instruction, so local accumulation strictly
// increases it; the content-hash tiebreak keeps the order total even
// if that assumption is ever violated.
func score(p *ifprob.Profile) uint64 {
	return p.Instrs + p.Executed()
}

// contentHash is the canonical identity of a component's counters.
// The Program field is excluded: it is the composite storage key,
// identical on every replica by construction but not part of the
// replicated state.
func contentHash(p *ifprob.Profile) string {
	data, err := json.Marshal(struct {
		Dataset string
		Taken   []uint64
		Total   []uint64
		Instrs  uint64
	}{p.Dataset, p.Taken, p.Total, p.Instrs})
	if err != nil {
		// Fixed-shape integers and strings cannot fail to marshal.
		panic(fmt.Sprintf("replstore: hashing component: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// compositeKey builds the inner-store key of (origin, key).
func compositeKey(origin, key string) string { return origin + Sep + key }

// splitKey undoes compositeKey; composite is false for plain keys.
func splitKey(k string) (origin, key string, composite bool) {
	if i := strings.Index(k, Sep); i >= 0 {
		return k[:i], k[i+1:], true
	}
	return "", k, false
}

// foldLocked builds (and caches) the served view of key: its
// components merged in sorted origin order. The fold order is fixed,
// so every replica holding the same component set produces the
// byte-identical merged profile. Callers hold s.mu.
func (s *Store) foldLocked(ctx context.Context, key string) (*ifprob.Profile, error) {
	if p, ok := s.merged[key]; ok {
		return p, nil
	}
	m := s.metas[key]
	if len(m) == 0 {
		return nil, nil
	}
	origins := make([]string, 0, len(m))
	for o := range m {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	var acc *ifprob.Profile
	for _, o := range origins {
		p, err := s.inner.Get(ctx, compositeKey(o, key))
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // raced away; the index catches up on next write
		}
		p.Program = key
		if acc == nil {
			acc = p
			continue
		}
		if err := acc.Merge(p); err != nil {
			// Components of one key disagree on shape (the same program
			// name profiled from different compilations on different
			// nodes). Serve the fold so far; the conflict surfaces when
			// the client's own ingest hits ErrConflict.
			return nil, fmt.Errorf("%w: components of %q diverge across nodes: %v", store.ErrConflict, key, err)
		}
	}
	s.merged[key] = acc
	return acc, nil
}

// Get implements store.Store: the folded view of key.
func (s *Store) Get(ctx context.Context, key string) (*ifprob.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.foldLocked(ctx, key)
	if err != nil || p == nil {
		return nil, err
	}
	return p.Clone(), nil
}

// Merge implements store.Store: local ingest accumulates into Self's
// component only — the one component this replica is authoritative
// for, and the only one it ever advertises as its own.
func (s *Store) Merge(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	key := p.Program
	q := p.Clone()
	q.Program = compositeKey(s.self, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkShapeLocked(ctx, key, q); err != nil {
		return err
	}
	if err := s.inner.Merge(ctx, q); err != nil {
		return err
	}
	return s.refreshMetaLocked(ctx, key, s.self)
}

// checkShapeLocked rejects a local ingest whose site count conflicts
// with any existing component of key. The inner store would only
// catch a conflict against Self's own component; without this, two
// compilations of one program could live in different origins'
// components and poison every fold.
func (s *Store) checkShapeLocked(ctx context.Context, key string, p *ifprob.Profile) error {
	for origin := range s.metas[key] {
		cur, err := s.inner.Get(ctx, compositeKey(origin, key))
		if err != nil {
			return err
		}
		if cur != nil && cur.Sites() != p.Sites() {
			return fmt.Errorf("%w: %q has %d sites on node %q, incoming profile has %d",
				store.ErrConflict, key, cur.Sites(), origin, p.Sites())
		}
	}
	return nil
}

// Put implements store.Store: replace Self's component for p.Program
// wholesale. Other nodes' components are untouched (they are theirs).
func (s *Store) Put(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	key := p.Program
	q := p.Clone()
	q.Program = compositeKey(s.self, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inner.Put(ctx, q); err != nil {
		return err
	}
	return s.refreshMetaLocked(ctx, key, s.self)
}

// Delete implements store.Store: drop every origin's component of key
// on THIS replica. Deletion is not replicated — there are no
// tombstones, so anti-entropy resurrects the key from any peer still
// holding it. Delete is a local operational tool, not a cluster one.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for origin := range s.metas[key] {
		if err := s.inner.Delete(ctx, compositeKey(origin, key)); err != nil {
			return err
		}
	}
	delete(s.metas, key)
	delete(s.merged, key)
	return nil
}

// Keys implements store.Store: the logical keys, sorted.
func (s *Store) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.metas))
	for k := range s.metas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Snapshot implements store.Store: every logical key's folded view.
// Because the fold is deterministic, replicas with equal component
// sets return byte-identical snapshots — the convergence contract the
// cluster soak asserts.
func (s *Store) Snapshot(ctx context.Context) (map[string]*ifprob.Profile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*ifprob.Profile, len(s.metas))
	for key := range s.metas {
		p, err := s.foldLocked(ctx, key)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out[key] = p.Clone()
		}
	}
	return out, nil
}

// Load implements store.Store: reload the inner store from disk and
// rebuild the component index from what it now holds.
func (s *Store) Load(ctx context.Context) error {
	if err := s.inner.Load(ctx); err != nil {
		return err
	}
	_, err := s.rebuild(ctx)
	return err
}

// Save implements store.Store, translating logical keys to the
// composite keys of every component they own so the inner driver's
// key→shard selection keeps working.
func (s *Store) Save(ctx context.Context, keys ...string) error {
	if len(keys) == 0 {
		return s.inner.Save(ctx)
	}
	s.mu.Lock()
	var inner []string
	for _, key := range keys {
		for origin := range s.metas[key] {
			inner = append(inner, compositeKey(origin, key))
		}
	}
	s.mu.Unlock()
	if len(inner) == 0 {
		return nil
	}
	return s.inner.Save(ctx, inner...)
}

// Close implements store.Store.
func (s *Store) Close(ctx context.Context) error { return s.inner.Close(ctx) }

// Stats implements store.Store: the inner driver's persistence health
// with the replica's logical shape on top.
func (s *Store) Stats() store.Stats {
	st := s.inner.Stats()
	st.Driver = "repl+" + st.Driver
	s.mu.Lock()
	st.Keys = len(s.metas)
	s.mu.Unlock()
	return st
}

// Digest returns this replica's anti-entropy summary. The copy is
// deep; callers may serve it concurrently with writes.
func (s *Store) Digest() Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := make(Digest, len(s.metas))
	for key, m := range s.metas {
		dm := make(map[string]Meta, len(m))
		for o, meta := range m {
			dm[o] = meta
		}
		d[key] = dm
	}
	return d
}

// Diff compares a peer's digest against local state and returns the
// refs this replica should pull: components the peer holds that are
// missing here or beat the local copy. Components the peer advertises
// under THIS node's own origin are never pulled — a replica is
// authoritative for its own component, and any remote copy of it is a
// stale snapshot.
func (s *Store) Diff(peer Digest) []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	var refs []Ref
	for key, theirs := range peer {
		mine := s.metas[key]
		for origin, meta := range theirs {
			if origin == s.self {
				continue
			}
			if local, ok := mine[origin]; !ok || meta.beats(local) {
				refs = append(refs, Ref{Key: key, Origin: origin})
			}
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Key != refs[j].Key {
			return refs[i].Key < refs[j].Key
		}
		return refs[i].Origin < refs[j].Origin
	})
	return refs
}

// Owed is the reverse diff: the components this replica holds that the
// peer's digest is missing or behind on — the hand-off backlog the
// peer will pull (from us or another replica that has them) once it
// can. Exposed per peer as gauge + health detail.
func (s *Store) Owed(peer Digest) []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	var refs []Ref
	for key, mine := range s.metas {
		theirs := peer[key]
		for origin, meta := range mine {
			if remote, ok := theirs[origin]; !ok || meta.beats(remote) {
				refs = append(refs, Ref{Key: key, Origin: origin})
			}
		}
	}
	return refs
}

// Fetch returns the named components' current state. Unknown refs are
// skipped — the caller's digest was a moment ago, keys move on.
func (s *Store) Fetch(ctx context.Context, refs []Ref) ([]Component, error) {
	out := make([]Component, 0, len(refs))
	for _, ref := range refs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := s.inner.Get(ctx, compositeKey(ref.Origin, ref.Key))
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		out = append(out, Component{Key: ref.Key, Origin: ref.Origin, Profile: p})
	}
	return out, nil
}

// Apply installs a component pulled from a peer, if it wins against
// the local copy under the deterministic order. It reports whether the
// component was installed (callers save the touched key when so).
// Components claiming this node's own origin are rejected outright.
func (s *Store) Apply(ctx context.Context, c Component) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := CheckOrigin(c.Origin); err != nil {
		return false, err
	}
	if c.Origin == s.self {
		return false, fmt.Errorf("replstore: peer offered a component claiming to be ours (origin %q)", c.Origin)
	}
	if c.Profile == nil {
		return false, errors.New("replstore: component has no profile")
	}
	if c.Key == "" || strings.Contains(c.Key, Sep) {
		return false, fmt.Errorf("replstore: invalid component key %q", c.Key)
	}
	if err := c.Profile.CheckConsistent(); err != nil {
		return false, fmt.Errorf("replstore: inconsistent component from peer: %w", err)
	}
	incoming := metaOf(c.Profile)
	p := c.Profile.Clone()
	p.Program = compositeKey(c.Origin, c.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if local, ok := s.metas[c.Key][c.Origin]; ok && !incoming.beats(local) {
		return false, nil
	}
	if err := s.inner.Put(ctx, p); err != nil {
		return false, err
	}
	if err := s.refreshMetaLocked(ctx, c.Key, c.Origin); err != nil {
		return false, err
	}
	return true, nil
}

// Package store is the pluggable persistence layer for accumulated
// branch profiles. The paper's central object — per-branch taken/total
// counters keyed by program (and, in the daemon, by program@dataset) —
// is commutative under ifprob.Profile.Merge, which makes the store
// CRDT-shaped: merges commute, so the keyspace can be split across
// shards, saved independently, and recombined in any order without
// losing a count.
//
// The package defines the Store interface every consumer (branchprofd,
// the CLI tools, tests) programs against, plus a database/sql-style
// driver registry so implementations stay pluggable:
//
//   - internal/store/memstore — the reference implementation: one
//     ifprob.DB behind the interface, persisted (optionally) to the
//     single checksummed file the repository has always used;
//   - internal/store/shardstore — the scale implementation:
//     consistent-hashes the keyspace across N shard directories, each
//     with its own flock, checksummed atomic save and circuit
//     breaker, so a hot or corrupt shard degrades alone.
//
// Open probes the path (file → memstore, manifest-bearing directory →
// shardstore) and migrates single-file databases into shard form when
// asked (see docs/STORE.md for the layout and migration contract).
// Drivers register themselves in init; consumers import the drivers
// they are willing to link:
//
//	import (
//	    _ "branchprof/internal/store/memstore"
//	    _ "branchprof/internal/store/shardstore"
//	)
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
)

// Store is a keyed collection of accumulated branch profiles. Keys
// are opaque strings (branchprofd uses "program@dataset"); the value
// under a key is the commutative merge of every profile ever merged
// under it. Implementations are safe for concurrent use, and every
// method honours ctx cancellation before touching state.
type Store interface {
	// Get returns a deep copy of the profile stored under key, or nil
	// when the key is absent.
	Get(ctx context.Context, key string) (*ifprob.Profile, error)
	// Merge accumulates p under p.Program (the caller sets the
	// composite key there before merging). A profile whose shape
	// conflicts with the accumulated data returns an error wrapping
	// ErrConflict; the stored data is unchanged.
	Merge(ctx context.Context, p *ifprob.Profile) error
	// Put installs a deep copy of p under p.Program, replacing any
	// accumulated data — the non-accumulating write the replication
	// layer needs to adopt a peer's component state wholesale.
	Put(ctx context.Context, p *ifprob.Profile) error
	// Delete removes key; deleting an absent key is a no-op.
	Delete(ctx context.Context, key string) error
	// Keys lists every stored key, sorted.
	Keys(ctx context.Context) ([]string, error)
	// Snapshot returns a deep copy of the entire store.
	Snapshot(ctx context.Context) (map[string]*ifprob.Profile, error)
	// Load re-reads the persisted state, replacing the in-memory view.
	// A store with no persistence resets to empty. Corrupt persisted
	// state returns an error wrapping ifprob.ErrCorrupt (Open, by
	// contrast, quarantines corruption and starts fresh).
	Load(ctx context.Context) error
	// Save persists the shards covering keys (every dirty shard when
	// keys is empty). A non-nil error means some selected data is not
	// durable — failed outright, or skipped by an open per-shard
	// breaker (then wrapping ErrDegraded). Unselected healthy shards
	// are unaffected either way.
	Save(ctx context.Context, keys ...string) error
	// Close releases resources (locks, registrations). It does NOT
	// save; callers flush with Save first. The store is unusable after.
	Close(ctx context.Context) error
	// Stats reports the store's shape and persistence health.
	Stats() Stats
}

// Checkpointed is the optional interface a driver implements to host
// write-ahead journal watermarks inside its own persistence unit. The
// wal layer (internal/store/wal) requires it of the store it wraps:
// the watermark must live *in the same file as the data it describes*
// — written in the same atomic rename — because a checkpoint stored
// separately from the data always leaves a crash window in which the
// two disagree, and Profile.Merge is not idempotent, so replaying a
// record the data already includes double-counts every branch.
//
// A save group is the driver's unit of atomic persistence: the single
// database file for memstore (group ""), one shard for shardstore
// (group = shard directory name). All three methods key by store key
// and resolve the owning group internally.
type Checkpointed interface {
	// SaveGroup names the save group that persists key.
	SaveGroup(key string) string
	// WALCheckpoint returns key's group's durable-or-staged watermark:
	// the highest journal sequence number whose effect the group's
	// in-memory state includes. After Load it reflects what the
	// persisted file recorded.
	WALCheckpoint(key string) uint64
	// StageWALCheckpoint records seq as included in key's group's
	// in-memory state. The next Save of that group persists data and
	// watermark together. Watermarks only move forward.
	StageWALCheckpoint(key string, seq uint64)
}

// Stats describes a store for health endpoints and metrics.
type Stats struct {
	// Driver is the registered driver name ("mem", "shard").
	Driver string
	// Persistent reports whether the store writes to disk at all.
	Persistent bool
	// Guarded reports whether the store isolates its own persistence
	// failures (per-shard breakers). Unguarded stores expect the
	// caller to wrap Save in its own breaker, the pre-shard contract.
	Guarded bool
	// Degraded reports whether any persistence path is currently
	// impaired (a shard breaker open or probing). Always false for
	// unguarded stores.
	Degraded bool
	// Keys is the number of stored keys.
	Keys int
	// Shards describes each shard of a sharded store; nil otherwise.
	Shards []ShardStats
}

// ShardStats is one shard's persistence health.
type ShardStats struct {
	Name        string // shard directory name, e.g. "shard-003"
	Keys        int    // keys resident in this shard
	Dirty       bool   // unsaved changes pending
	Saves       uint64 // successful saves
	SaveErrors  uint64 // failed saves
	SaveSkipped uint64 // saves skipped by an open breaker
	Breaker     string // breaker state ("closed", "open", "half-open")
}

// ErrConflict marks a Merge whose profile shape (site table) does not
// match the accumulated data under the same key — same name,
// different compilation.
var ErrConflict = errors.New("store: profile conflicts with accumulated data")

// ErrDegraded marks a Save skipped (wholly or partly) by an open
// circuit breaker rather than failed by the medium.
var ErrDegraded = errors.New("store: persistence degraded, save skipped")

// ManifestName is the file whose presence marks a directory as a
// sharded store root. Defined here so Open can probe for it without
// importing the shardstore driver.
const ManifestName = "MANIFEST.json"

// Options configures Open and is passed through to the driver.
type Options struct {
	// Driver forces a registered driver ("mem", "shard"); empty
	// auto-detects from the path and Shards.
	Driver string
	// Shards is the shard count for newly created sharded stores (and
	// opts a single-file path into migration); an existing store's
	// manifest wins. 0 with no manifest means unsharded.
	Shards int
	// BreakerThreshold and BreakerCooldown configure the per-shard
	// circuit breakers of guarded drivers; zero picks the circuit
	// package defaults (3 failures, 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Faults injects faults at the db-save/db-load stages (chaos tests
	// only; nil injects nothing).
	Faults *faults.Set
	// Now supplies the clock for breaker cooldowns; nil means time.Now.
	Now func() time.Time
}

// Opener is a driver's constructor: open (creating or migrating as
// needed) the store at path. The returned warnings are non-fatal
// startup conditions the operator should see (quarantined corruption,
// completed migrations).
type Opener func(ctx context.Context, path string, opts Options) (Store, []string, error)

var (
	driversMu sync.Mutex
	drivers   = make(map[string]Opener)
)

// Register makes a driver available to Open under name. Drivers call
// it from init; a duplicate name panics, like database/sql.
func Register(name string, open Opener) {
	driversMu.Lock()
	defer driversMu.Unlock()
	if _, dup := drivers[name]; dup {
		panic(fmt.Sprintf("store: driver %q registered twice", name))
	}
	drivers[name] = open
}

// Drivers lists the registered driver names, sorted.
func Drivers() []string {
	driversMu.Lock()
	defer driversMu.Unlock()
	names := make([]string, 0, len(drivers))
	for n := range drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Open opens the store at path, detecting its kind:
//
//   - opts.Driver set → that driver, no questions asked;
//   - path is a directory containing ManifestName → "shard";
//   - path is a regular file → "mem", unless opts.Shards > 0, which
//     selects "shard" and migrates the single-file database in place
//     (original preserved as path+".pre-shard");
//   - path missing → "shard" when opts.Shards > 0, else "mem";
//   - path empty → "mem" with no persistence.
//
// The chosen driver must have been linked in (imported) by the
// caller; otherwise Open returns an error naming it.
func Open(ctx context.Context, path string, opts Options) (Store, []string, error) {
	name := opts.Driver
	if name == "" {
		name = detect(path, opts.Shards)
	}
	driversMu.Lock()
	open, ok := drivers[name]
	driversMu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("store: driver %q not linked in (registered: %v)", name, Drivers())
	}
	return open(ctx, path, opts)
}

// detect picks a driver name from what is on disk.
func detect(path string, shards int) string {
	if path == "" {
		return "mem"
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		if _, err := os.Stat(filepath.Join(path, ManifestName)); err == nil {
			return "shard"
		}
		// A directory without a manifest is not a store; let the
		// sharded driver report the precise error (or initialize it
		// when the operator asked for shards).
		return "shard"
	}
	if shards > 0 {
		return "shard"
	}
	return "mem"
}

// Package wal is the write-ahead journal layer of the profile store:
// a store.Store wrapper that appends every mutation (Merge, Put,
// Delete) to a segmented, CRC-framed log on disk *before* applying it
// to the wrapped driver, and replays unapplied records when the store
// reopens. With it, "200 OK" can mean durable: an acknowledged ingest
// survives a crash even when the wrapped driver's periodic Save never
// ran — including the save breaker's degraded mode, whose outage data
// previously lived purely in memory.
//
// # Layout and framing
//
//	<dir>/wal-00000001.seg
//	<dir>/wal-00000002.seg        (active)
//
// Each segment is a sequence of frames:
//
//	u32le body length | u32le CRC-32 (IEEE) of body | body
//
// where the body is the compact JSON of one record {seq, op, key,
// profile?}. Sequence numbers are assigned globally, monotonically,
// at append time, and records land in the log in sequence order.
//
// # Why replay needs sequence numbers
//
// Profile.Merge is commutative but not idempotent — it adds counters —
// so replaying a record whose effect the data files already include
// would double-count every branch. The watermark that decides "already
// included" therefore cannot live in a separate checkpoint file: a
// crash between the data write and the checkpoint write would leave
// the two disagreeing, and one direction of that disagreement is
// silent double-counting. Instead the watermark is embedded in the
// driver's own save unit (store.Checkpointed: the memstore file, or
// one shardstore shard), written in the same atomic rename as the
// profiles it describes. Replay skips a record iff its sequence number
// is at or below the watermark its key's save group persisted.
//
// # Recovery
//
// Open scans the segments in order and stops at the first bad frame —
// a torn tail from a crash mid-append — truncating the file there.
// Records above their group's persisted watermark are re-applied and
// become pending again; records at or below it are skipped. Replay
// itself never saves and never truncates the log, so a crash *during*
// replay restarts it from the same state: the staged watermarks were
// never persisted, and re-applying is exactly as idempotent as the
// first replay.
//
// # Truncation
//
// Save persists each touched save group through the wrapped driver
// and, on success, drops that group's pending records at or below the
// watermark the save just made durable. Segments whose records are all
// persisted are deleted; when nothing at all is pending the whole log
// resets. The journal therefore grows only while data outruns saves —
// notably during a breaker-open outage, when every skipped save leaves
// its records pending and the log is what makes the outage survivable.
//
// Fault injection: stages faults.JournalAppend (label = record key;
// TornWrite rules write a partial frame, fsync it, and crash),
// faults.JournalSync (label = active segment path),
// faults.JournalTruncate (label = segment path) and
// faults.JournalReplay (label = record key). See docs/ROBUSTNESS.md
// § Durability contract.
package wal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"
)

// FsyncPolicy names when appended records are forced to the medium —
// the durability an acknowledgement carries.
type FsyncPolicy string

const (
	// FsyncRecord syncs inside every append: an acknowledged mutation
	// is durable. The strongest and slowest policy.
	FsyncRecord FsyncPolicy = "record"
	// FsyncBatch leaves syncing to explicit Sync calls; the server
	// syncs once per request (batch/stream window), so an ack covers
	// the whole batch at one fsync.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncInterval syncs on a background ticker: bounded data loss
	// (at most one interval) at near-zero per-record cost.
	FsyncInterval FsyncPolicy = "interval"
)

// Options configures Wrap.
type Options struct {
	// Fsync is the sync policy; empty means FsyncRecord.
	Fsync FsyncPolicy
	// Interval is the FsyncInterval ticker period; 0 means 100ms.
	Interval time.Duration
	// SegmentBytes rolls the active segment beyond this size; 0 means
	// 4 MiB.
	SegmentBytes int64
	// Faults injects faults at the journal stages (chaos tests only).
	Faults *faults.Set
}

const (
	frameHeader     = 8
	maxRecordBytes  = 64 << 20 // sanity bound on frame bodies
	defSegmentBytes = 4 << 20
	defInterval     = 100 * time.Millisecond
	segPrefix       = "wal-"
	segSuffix       = ".seg"
)

// record is one journaled mutation.
type record struct {
	Seq     uint64          `json:"seq"`
	Op      string          `json:"op"` // "merge", "put", "delete"
	Key     string          `json:"key"`
	Profile *ifprob.Profile `json:"profile,omitempty"`
}

// group is the per-save-group journal bookkeeping. Its mutex is the
// write-ahead atomicity lock: a mutation holds it from append through
// inner apply to watermark staging, and Save holds it around the
// wrapped driver's save of the group — so a save can never land
// between an applied mutation and its staged watermark, which is the
// window that would persist data with a stale watermark and
// double-count on replay.
type group struct {
	mu      sync.Mutex
	repKey  string              // any key of the group, for scoped inner saves
	applied uint64              // highest seq applied to the group (s.mu-guarded)
	pending map[uint64]struct{} // appended, not yet persisted (s.mu-guarded)
}

// Store is the journaled store. Construct with Wrap.
type Store struct {
	inner store.Store
	cp    store.Checkpointed
	dir   string
	opts  Options

	mu         sync.Mutex // segment file, seq, groups map, pending sets, stats
	seq        uint64     // last assigned sequence number
	active     *os.File
	activePath string
	activeSize int64
	activeIdx  int  // active segment number
	dirtyBytes bool // unsynced appends in the active segment
	broken     error
	groups     map[string]*group

	appends   uint64
	syncs     uint64
	replayed  uint64
	truncated uint64

	stopTick chan struct{}
	tickDone chan struct{}
}

// Stats reports the journal's shape for health endpoints and metrics.
type Stats struct {
	Dir       string
	Policy    FsyncPolicy
	Segments  int    // segment files on disk
	Bytes     int64  // total log bytes on disk
	Pending   int    // records appended but not yet persisted by a save
	LastSeq   uint64 // last assigned sequence number
	Appends   uint64 // records appended since open
	Syncs     uint64 // fsyncs issued since open
	Replayed  uint64 // records re-applied by the last open's replay
	Truncated uint64 // segment files deleted since open
	Broken    bool   // the log hit an unrecoverable write error
}

// Wrap opens the journal at dir around inner and replays any records
// the wrapped store's watermarks say are not yet applied. inner must
// implement store.Checkpointed (memstore and shardstore do); wrapping
// anything else is a construction error, not a silent downgrade.
// Returned warnings report torn tails truncated and records skipped
// during replay.
func Wrap(ctx context.Context, inner store.Store, dir string, opts Options) (*Store, []string, error) {
	cp, ok := inner.(store.Checkpointed)
	if !ok {
		return nil, nil, fmt.Errorf("wal: store driver %q does not support checkpoints", inner.Stats().Driver)
	}
	if dir == "" {
		return nil, nil, errors.New("wal: a journal needs a directory")
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncRecord
	}
	switch opts.Fsync {
	case FsyncRecord, FsyncBatch, FsyncInterval:
	default:
		return nil, nil, fmt.Errorf("wal: unknown fsync policy %q (want record, batch or interval)", opts.Fsync)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = defInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	w := &Store{
		inner:  inner,
		cp:     cp,
		dir:    dir,
		opts:   opts,
		groups: make(map[string]*group),
	}
	warns, lastIdx, err := w.replay(ctx)
	if err != nil {
		return nil, warns, err
	}
	// Seed the sequence counter past everything the data files have
	// seen, so a truncated log can never hand out a sequence number
	// some persisted watermark already covers.
	keys, err := inner.Keys(ctx)
	if err != nil {
		return nil, warns, fmt.Errorf("wal: listing keys: %w", err)
	}
	for _, key := range keys {
		if cpSeq := cp.WALCheckpoint(key); cpSeq > w.seq {
			w.seq = cpSeq
		}
	}
	// Always start appending into a fresh segment: the previous tail
	// may have been truncated at a torn frame, and appending after a
	// repaired tail keeps every segment append-only from birth.
	if err := w.openSegment(lastIdx + 1); err != nil {
		return nil, warns, err
	}
	if opts.Fsync == FsyncInterval {
		w.stopTick = make(chan struct{})
		w.tickDone = make(chan struct{})
		go w.tickLoop()
	}
	return w, warns, nil
}

// tickLoop drives the FsyncInterval policy.
func (w *Store) tickLoop() {
	defer close(w.tickDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopTick:
			return
		case <-t.C:
			w.Sync(context.Background())
		}
	}
}

// segName names segment i.
func segName(i int) string { return fmt.Sprintf("%s%08d%s", segPrefix, i, segSuffix) }

// segIndex parses a segment file name, returning -1 for non-segments.
func segIndex(name string) int {
	var i int
	if n, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &i); n != 1 || err != nil {
		return -1
	}
	return i
}

// segments lists the journal's segment files in index order.
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && segIndex(e.Name()) >= 0 {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// openSegment starts a new active segment numbered idx.
func (w *Store) openSegment(idx int) error {
	path := filepath.Join(w.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	w.active = f
	w.activePath = path
	w.activeSize = 0
	w.activeIdx = idx
	syncDir(w.dir) // make the new name durable
	return nil
}

// syncDir fsyncs a directory so renames and creates inside it stick.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// groupFor returns (creating on first use) key's group bookkeeping.
// Callers hold no locks.
func (w *Store) groupFor(key string) *group {
	name := w.cp.SaveGroup(key)
	w.mu.Lock()
	defer w.mu.Unlock()
	g, ok := w.groups[name]
	if !ok {
		g = &group{repKey: key, pending: make(map[uint64]struct{})}
		w.groups[name] = g
	}
	return g
}

// encodeFrame frames a record body for the log.
func encodeFrame(body []byte) []byte {
	buf := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[frameHeader:], body)
	return buf
}

// append journals one record: assign the next sequence number, write
// the frame, sync per policy, and mark the record pending for its
// group. The caller holds g.mu (write-ahead atomicity); append takes
// s.mu for the file and bookkeeping. On an I/O error the partial
// frame is truncated away; if even that fails the log is broken and
// every later append refuses, so nothing is ever acked into an
// unparseable log.
func (w *Store) append(g *group, rec *record) (uint64, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("wal: encoding record: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return 0, fmt.Errorf("wal: journal is broken: %w", w.broken)
	}
	if err := w.opts.Faults.Fire(faults.JournalAppend, rec.Key); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	rec.Seq = w.seq + 1
	body, err = json.Marshal(rec) // re-encode with the real seq
	if err != nil {
		return 0, fmt.Errorf("wal: encoding record: %w", err)
	}
	frame := encodeFrame(body)
	if n := w.opts.Faults.Torn(faults.JournalAppend, rec.Key, len(frame)); n < len(frame) {
		// Crash mid-append: the torn frame reaches the medium and the
		// process dies. Mark the log broken first — after a real crash
		// nothing else gets acknowledged either, and an append landing
		// after a torn tail would be discarded by the next replay.
		w.active.Write(frame[:n])
		w.active.Sync()
		w.broken = fmt.Errorf("torn append at seq %d", rec.Seq)
		panic(&faults.CrashPanic{Stage: faults.JournalAppend, Label: rec.Key})
	}
	start := w.activeSize
	if _, err := w.active.Write(frame); err != nil {
		if terr := w.active.Truncate(start); terr != nil {
			w.broken = fmt.Errorf("append failed (%v) and truncate-back failed: %w", err, terr)
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.activeSize += int64(len(frame))
	w.seq = rec.Seq
	w.appends++
	w.dirtyBytes = true
	if w.opts.Fsync == FsyncRecord {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	g.pending[rec.Seq] = struct{}{}
	if w.activeSize >= w.opts.SegmentBytes {
		w.rollLocked()
	}
	return rec.Seq, nil
}

// syncLocked forces buffered appends to the medium. Caller holds s.mu.
func (w *Store) syncLocked() error {
	if !w.dirtyBytes || w.active == nil {
		return nil
	}
	if err := w.opts.Faults.Fire(faults.JournalSync, w.activePath); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.dirtyBytes = false
	w.syncs++
	return nil
}

// rollLocked closes the active segment and starts the next one.
// Caller holds s.mu; errors leave the current segment active.
func (w *Store) rollLocked() {
	if err := w.syncLocked(); err != nil {
		return
	}
	w.active.Close()
	if err := w.openSegment(w.activeIdx + 1); err != nil {
		w.broken = err
	}
}

// Sync forces every acknowledged-but-buffered record to the medium —
// the FsyncBatch commit point, called by the server once per ingest
// request before acknowledging.
func (w *Store) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// stageApplied records that seq's effect is in key's group's memory
// state, both in the driver's save unit and in the group bookkeeping.
func (w *Store) stageApplied(g *group, key string, seq uint64) {
	w.cp.StageWALCheckpoint(key, seq)
	w.mu.Lock()
	if seq > g.applied {
		g.applied = seq
	}
	w.mu.Unlock()
}

// dropPending forgets the record: it will never be persisted (the
// apply failed), and replay will deterministically skip it the same
// way, so it must not hold truncation back.
func (w *Store) dropPending(g *group, seq uint64) {
	w.mu.Lock()
	delete(g.pending, seq)
	w.mu.Unlock()
}

// Merge implements store.Store: journal, then apply.
func (w *Store) Merge(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	g := w.groupFor(p.Program)
	g.mu.Lock()
	defer g.mu.Unlock()
	seq, err := w.append(g, &record{Op: "merge", Key: p.Program, Profile: p})
	if err != nil {
		return err
	}
	if err := w.inner.Merge(ctx, p); err != nil {
		w.dropPending(g, seq)
		return err
	}
	w.stageApplied(g, p.Program, seq)
	return nil
}

// Put implements store.Store: journal, then apply.
func (w *Store) Put(ctx context.Context, p *ifprob.Profile) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	g := w.groupFor(p.Program)
	g.mu.Lock()
	defer g.mu.Unlock()
	seq, err := w.append(g, &record{Op: "put", Key: p.Program, Profile: p})
	if err != nil {
		return err
	}
	if err := w.inner.Put(ctx, p); err != nil {
		w.dropPending(g, seq)
		return err
	}
	w.stageApplied(g, p.Program, seq)
	return nil
}

// Delete implements store.Store: journal, then apply.
func (w *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	g := w.groupFor(key)
	g.mu.Lock()
	defer g.mu.Unlock()
	seq, err := w.append(g, &record{Op: "delete", Key: key})
	if err != nil {
		return err
	}
	if err := w.inner.Delete(ctx, key); err != nil {
		w.dropPending(g, seq)
		return err
	}
	w.stageApplied(g, key, seq)
	return nil
}

// Get implements store.Store (read passthrough).
func (w *Store) Get(ctx context.Context, key string) (*ifprob.Profile, error) {
	return w.inner.Get(ctx, key)
}

// Keys implements store.Store (read passthrough).
func (w *Store) Keys(ctx context.Context) ([]string, error) { return w.inner.Keys(ctx) }

// Snapshot implements store.Store (read passthrough).
func (w *Store) Snapshot(ctx context.Context) (map[string]*ifprob.Profile, error) {
	return w.inner.Snapshot(ctx)
}

// Save implements store.Store: persist each selected save group
// through the wrapped driver, and drop the pending records each
// successful group save made durable. Groups save one at a time so
// every watermark drop is attributed to a save that actually landed —
// a failing shard keeps exactly its own records pending. Afterwards,
// fully persisted segments are deleted.
func (w *Store) Save(ctx context.Context, keys ...string) error {
	selected := make(map[string]*group)
	if len(keys) > 0 {
		for _, key := range keys {
			selected[w.cp.SaveGroup(key)] = w.groupFor(key)
		}
	} else {
		w.mu.Lock()
		for name, g := range w.groups {
			selected[name] = g
		}
		w.mu.Unlock()
	}
	names := make([]string, 0, len(selected))
	for name := range selected {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		g := selected[name]
		if err := w.saveGroup(ctx, g); err != nil {
			errs = append(errs, err)
		}
	}
	// Journal-backed degraded mode drains itself: groups with pending
	// records the caller did not select — the backlog a failed or
	// breaker-skipped save left behind — are retried opportunistically
	// at every save point, so the log stops growing as soon as the disk
	// heals instead of waiting for traffic to re-touch the sick shard.
	// Retry failures are not the caller's: they stay out of the
	// returned error (the records simply remain pending) and are
	// visible through WALStats.Pending and the driver's breaker state.
	if len(keys) > 0 {
		var backlog []*group
		w.mu.Lock()
		for name, g := range w.groups {
			if _, ok := selected[name]; !ok && len(g.pending) > 0 {
				backlog = append(backlog, g)
			}
		}
		w.mu.Unlock()
		for _, g := range backlog {
			if ctx.Err() != nil {
				break
			}
			w.saveGroup(ctx, g) //nolint:errcheck // backlog retry: records stay pending
		}
	}
	// A keyless Save is "persist everything": after the per-group
	// passes, sweep the driver once for any dirtiness not owed to a
	// journaled mutation (clean groups make this a cheap no-op).
	if len(keys) == 0 && ctx.Err() == nil {
		if err := w.inner.Save(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	w.truncate()
	return errors.Join(errs...)
}

// saveGroup persists one group under its write-ahead atomicity lock.
func (w *Store) saveGroup(ctx context.Context, g *group) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	w.mu.Lock()
	durable := g.applied
	w.mu.Unlock()
	if err := w.inner.Save(ctx, g.repKey); err != nil {
		return err
	}
	w.mu.Lock()
	for seq := range g.pending {
		if seq <= durable {
			delete(g.pending, seq)
		}
	}
	w.mu.Unlock()
	return nil
}

// truncate deletes segments whose records are all persisted. The low
// water mark is one below the lowest pending sequence number (or the
// last assigned number when nothing is pending); a segment is safe to
// delete when every record it can hold is at or below it. With no
// pending records at all, the active segment is rolled too, resetting
// the log. Crashing mid-truncate is harmless — replay skips whatever
// the watermarks already cover.
func (w *Store) truncate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	low := w.seq
	for _, g := range w.groups {
		for seq := range g.pending {
			if seq-1 < low {
				low = seq - 1
			}
		}
	}
	names, err := segments(w.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if name == filepath.Base(w.activePath) {
			// The active segment's records end at w.seq; reset it only
			// when everything is persisted and it holds something.
			if low == w.seq && w.activeSize > 0 {
				path := filepath.Join(w.dir, name)
				if err := w.opts.Faults.Fire(faults.JournalTruncate, path); err != nil {
					return
				}
				w.active.Close()
				os.Remove(path)
				w.truncated++
				if err := w.openSegment(w.activeIdx + 1); err != nil {
					w.broken = err
				}
			}
			continue
		}
		path := filepath.Join(w.dir, name)
		maxSeq, ok := segmentMaxSeq(path)
		if !ok || maxSeq > low {
			continue
		}
		if err := w.opts.Faults.Fire(faults.JournalTruncate, path); err != nil {
			return
		}
		if os.Remove(path) == nil {
			w.truncated++
		}
	}
	syncDir(w.dir)
}

// segmentMaxSeq scans a closed segment for its highest sequence
// number. An empty or unreadable segment reports !ok and is left
// alone.
func segmentMaxSeq(path string) (uint64, bool) {
	var maxSeq uint64
	var any bool
	scanSegment(path, func(_ int64, rec *record) bool {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		any = true
		return true
	})
	return maxSeq, any
}

// scanSegment walks a segment's well-formed frames in order, calling
// fn with each record's file offset until fn returns false or the
// first bad frame. It returns the offset where scanning stopped and
// whether the remainder of the file (if any) was malformed.
func scanSegment(path string, fn func(off int64, rec *record) bool) (stopOff int64, torn bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	r := &countReader{r: f}
	for {
		frameStart := r.n
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return frameStart, !errors.Is(err, io.EOF)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			return frameStart, true
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return frameStart, true
		}
		if crc32.ChecksumIEEE(body) != sum {
			return frameStart, true
		}
		var rec record
		if err := json.Unmarshal(body, &rec); err != nil {
			return frameStart, true
		}
		if !fn(frameStart, &rec) {
			return r.n, false
		}
	}
}

// countReader counts consumed bytes so scanSegment knows frame
// offsets without seeking.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// replay applies every journaled record the data files do not already
// include, in sequence order, stopping at the first bad frame (the
// file is truncated there and later segments are dropped — they are
// beyond the torn point). It returns the highest segment index seen,
// so Open can start the next one.
func (w *Store) replay(ctx context.Context) (warns []string, lastIdx int, err error) {
	names, err := segments(w.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: scanning %s: %w", w.dir, err)
	}
	stopped := false
	for _, name := range names {
		if idx := segIndex(name); idx > lastIdx {
			lastIdx = idx
		}
		if stopped {
			// Everything after a torn frame is unreachable history;
			// segments past it only exist if the directory was
			// hand-assembled. Leave them for the audit tool.
			continue
		}
		path := filepath.Join(w.dir, name)
		var applyErr error
		stopOff, torn := scanSegment(path, func(_ int64, rec *record) bool {
			if err := ctx.Err(); err != nil {
				applyErr = err
				return false
			}
			if err := w.applyReplay(ctx, rec, &warns); err != nil {
				applyErr = err
				return false
			}
			return true
		})
		if applyErr != nil {
			return warns, lastIdx, applyErr
		}
		if torn {
			warns = append(warns, fmt.Sprintf("journal %s has a torn tail; truncated at byte %d", path, stopOff))
			if terr := os.Truncate(path, stopOff); terr != nil {
				return warns, lastIdx, fmt.Errorf("wal: truncating torn tail of %s: %w", path, terr)
			}
			stopped = true
		}
	}
	return warns, lastIdx, nil
}

// applyReplay re-applies one record unless its group's persisted
// watermark already covers it. Failures that would fail identically
// every time (a conflicting merge) are skipped with a warning —
// replay must converge, not wedge the store on one bad record.
func (w *Store) applyReplay(ctx context.Context, rec *record, warns *[]string) error {
	if err := w.opts.Faults.Fire(faults.JournalReplay, rec.Key); err != nil {
		return fmt.Errorf("wal: replay: %w", err)
	}
	if rec.Seq <= w.cp.WALCheckpoint(rec.Key) {
		return nil
	}
	var err error
	switch rec.Op {
	case "merge":
		if rec.Profile == nil {
			err = errors.New("merge record without profile")
		} else {
			err = w.inner.Merge(ctx, rec.Profile)
		}
	case "put":
		if rec.Profile == nil {
			err = errors.New("put record without profile")
		} else {
			err = w.inner.Put(ctx, rec.Profile)
		}
	case "delete":
		err = w.inner.Delete(ctx, rec.Key)
	default:
		err = fmt.Errorf("unknown op %q", rec.Op)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		*warns = append(*warns, fmt.Sprintf("journal record %d (%s %s) skipped: %v", rec.Seq, rec.Op, rec.Key, err))
		return nil
	}
	g := w.groupFor(rec.Key)
	w.cp.StageWALCheckpoint(rec.Key, rec.Seq)
	w.mu.Lock()
	if rec.Seq > g.applied {
		g.applied = rec.Seq
	}
	g.pending[rec.Seq] = struct{}{}
	if rec.Seq > w.seq {
		w.seq = rec.Seq
	}
	w.replayed++
	w.mu.Unlock()
	return nil
}

// Load implements store.Store: re-read the wrapped store from disk,
// then replay the journal on top of it — the same recovery a reopen
// performs. Not safe to run concurrently with mutations (the contract
// every driver's Load shares).
func (w *Store) Load(ctx context.Context) error {
	if err := w.inner.Load(ctx); err != nil {
		return err
	}
	w.mu.Lock()
	for _, g := range w.groups {
		g.applied = 0
		g.pending = make(map[uint64]struct{})
	}
	w.mu.Unlock()
	if _, _, err := w.replay(ctx); err != nil {
		return err
	}
	return nil
}

// Close implements store.Store: stop the sync ticker, sync and close
// the active segment, and close the wrapped store. Pending records
// stay in the log for the next open's replay — Close does not save,
// per the Store contract.
func (w *Store) Close(ctx context.Context) error {
	if w.stopTick != nil {
		close(w.stopTick)
		<-w.tickDone
		w.stopTick = nil
	}
	w.mu.Lock()
	if w.active != nil {
		w.syncLocked()
		w.active.Close()
		w.active = nil
	}
	w.mu.Unlock()
	return w.inner.Close(ctx)
}

// Stats implements store.Store, reporting the wrapped driver's stats
// under a "wal+" driver prefix (journal detail is in WALStats).
func (w *Store) Stats() store.Stats {
	st := w.inner.Stats()
	st.Driver = "wal+" + st.Driver
	return st
}

// WALStats reports the journal's own shape.
func (w *Store) WALStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Dir:       w.dir,
		Policy:    w.opts.Fsync,
		LastSeq:   w.seq,
		Appends:   w.appends,
		Syncs:     w.syncs,
		Replayed:  w.replayed,
		Truncated: w.truncated,
		Broken:    w.broken != nil,
	}
	for _, g := range w.groups {
		st.Pending += len(g.pending)
	}
	if names, err := segments(w.dir); err == nil {
		st.Segments = len(names)
		for _, name := range names {
			if fi, err := os.Stat(filepath.Join(w.dir, name)); err == nil {
				st.Bytes += fi.Size()
			}
		}
	}
	return st
}

// Policy reports the configured fsync policy (fixed at Wrap).
func (w *Store) Policy() FsyncPolicy { return w.opts.Fsync }

// Broken reports whether the journal can no longer accept appends (a
// torn write poisoned the active segment's tail). Cheap, unlike
// WALStats, which scans the segment directory.
func (w *Store) Broken() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken != nil
}

// Inner exposes the wrapped store (tests and tooling).
func (w *Store) Inner() store.Store { return w.inner }

package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SegmentAudit is one segment's audit result.
type SegmentAudit struct {
	Path    string
	Records int
	MinSeq  uint64
	MaxSeq  uint64
	TornAt  int64 // byte offset of the first bad frame; -1 when clean
}

// Audit is VerifySegments' report over a whole journal directory.
type Audit struct {
	Segments []SegmentAudit
	Records  int
	MinSeq   uint64 // 0 when the log is empty
	MaxSeq   uint64
	// Problems are integrity violations recovery cannot repair and an
	// operator should see: bad frames anywhere but the final tail, or
	// sequence numbers that are not contiguous and increasing. A
	// non-empty list is what makes ifprobdb -verify exit non-zero.
	Problems []string
	// TornTail notes a bad frame at the end of the final segment — the
	// expected artifact of a crash mid-append, repaired by the next
	// open's replay. Reported separately because it is recoverable.
	TornTail string
}

// VerifySegments audits every journal segment under dir offline:
// frame lengths and CRCs, and global sequence continuity (each record
// must carry exactly the previous record's sequence number plus one —
// truncation deletes whole prefixes, so surviving records stay
// contiguous). Nothing is locked or mutated. A missing or empty
// directory is a valid, empty journal.
func VerifySegments(dir string) (*Audit, error) {
	names, err := segments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	a := &Audit{}
	var prevSeq uint64
	for i, name := range names {
		path := filepath.Join(dir, name)
		sa := SegmentAudit{Path: path, TornAt: -1}
		stopOff, torn := scanSegment(path, func(_ int64, rec *record) bool {
			if sa.Records == 0 {
				sa.MinSeq = rec.Seq
			}
			if a.Records == 0 {
				a.MinSeq = rec.Seq
			} else if rec.Seq != prevSeq+1 {
				a.Problems = append(a.Problems,
					fmt.Sprintf("%s: sequence gap: record %d follows %d", path, rec.Seq, prevSeq))
			}
			prevSeq = rec.Seq
			sa.MaxSeq = rec.Seq
			sa.Records++
			a.Records++
			if rec.Seq > a.MaxSeq {
				a.MaxSeq = rec.Seq
			}
			return true
		})
		if torn {
			sa.TornAt = stopOff
			if i == len(names)-1 {
				a.TornTail = fmt.Sprintf("%s: torn tail at byte %d (recoverable; replay truncates here)", path, stopOff)
			} else {
				a.Problems = append(a.Problems,
					fmt.Sprintf("%s: bad frame at byte %d in a non-final segment", path, stopOff))
			}
		}
		a.Segments = append(a.Segments, sa)
	}
	return a, nil
}

// CheckWatermark cross-checks one data file's persisted WAL watermark
// against the audited log: a watermark above every sequence number the
// log has ever assigned cannot have come from this journal. It
// returns a problem description, or "" when consistent. name labels
// the data file in the message.
func (a *Audit) CheckWatermark(name string, seq uint64) string {
	if seq == 0 || a.Records == 0 {
		// No watermark, or an empty (fully truncated) log — nothing to
		// contradict.
		return ""
	}
	if seq > a.MaxSeq {
		return fmt.Sprintf("%s: checkpoint %d exceeds the journal's last sequence number %d", name, seq, a.MaxSeq)
	}
	return ""
}

// DumpSegment pretty-prints one segment's frames for debugging: the
// byte offset, sequence number, operation, key and body size of each
// record, then a note if the tail is torn.
func DumpSegment(out io.Writer, path string) error {
	if _, err := os.Stat(path); err != nil {
		return err
	}
	stopOff, torn := scanSegment(path, func(off int64, rec *record) bool {
		size := ""
		if rec.Profile != nil {
			size = fmt.Sprintf(" sites=%d executed=%d", rec.Profile.Sites(), rec.Profile.Executed())
		}
		fmt.Fprintf(out, "%8d  seq=%-8d %-6s %s%s\n", off, rec.Seq, rec.Op, rec.Key, size)
		return true
	})
	if torn {
		fmt.Fprintf(out, "%8d  TORN FRAME (scanning stopped)\n", stopOff)
	} else {
		fmt.Fprintf(out, "%8d  end of segment\n", stopOff)
	}
	return nil
}

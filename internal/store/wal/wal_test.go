package wal_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"
	"branchprof/internal/store/memstore"
	"branchprof/internal/store/shardstore"
	"branchprof/internal/store/wal"
)

func mkProfile(key, dataset string, taken, total []uint64) *ifprob.Profile {
	return &ifprob.Profile{
		Program: key,
		Dataset: dataset,
		Taken:   append([]uint64(nil), taken...),
		Total:   append([]uint64(nil), total...),
		Instrs:  100,
	}
}

// drivers opens each checkpoint-capable driver for the matrix tests.
var drivers = map[string]func(t *testing.T, dir string, fs *faults.Set) store.Store{
	"mem": func(t *testing.T, dir string, fs *faults.Set) store.Store {
		s, _, err := memstore.Open(context.Background(), filepath.Join(dir, "profiles.db"), store.Options{Faults: fs})
		if err != nil {
			t.Fatalf("open mem: %v", err)
		}
		return s
	},
	"shard": func(t *testing.T, dir string, fs *faults.Set) store.Store {
		s, _, err := shardstore.Open(context.Background(), filepath.Join(dir, "profiles.d"),
			store.Options{Shards: 4, Faults: fs})
		if err != nil {
			t.Fatalf("open shard: %v", err)
		}
		return s
	},
}

// wrap journals inner at dir/wal.
func wrap(t *testing.T, inner store.Store, dir string, opts wal.Options) (*wal.Store, []string) {
	t.Helper()
	w, warns, err := wal.Wrap(context.Background(), inner, filepath.Join(dir, "wal"), opts)
	if err != nil {
		t.Fatalf("wal.Wrap: %v", err)
	}
	return w, warns
}

// executed reads key's total executed-branch count, 0 when absent.
func executed(t *testing.T, s store.Store, key string) uint64 {
	t.Helper()
	p, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	if p == nil {
		return 0
	}
	return p.Executed()
}

// TestWALReplayRestoresUnsavedMutations is the core durability
// property: acknowledged mutations that never reached a driver save
// survive a crash (simulated by abandoning the store un-saved) via
// journal replay.
func TestWALReplayRestoresUnsavedMutations(t *testing.T) {
	for name, open := range drivers {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			w, _ := wrap(t, open(t, dir, nil), dir, wal.Options{})
			for i, key := range []string{"a@d1", "b@d1", "c@d2"} {
				p := mkProfile(key, "d", []uint64{uint64(i + 1)}, []uint64{uint64(i + 2)})
				if err := w.Merge(ctx, p); err != nil {
					t.Fatalf("Merge(%s): %v", key, err)
				}
			}
			// Crash: no Save, no Close — the in-memory state is gone.
			if err := w.Close(ctx); err != nil {
				t.Fatalf("Close: %v", err)
			}

			w2, warns := wrap(t, open(t, dir, nil), dir, wal.Options{})
			if len(warns) != 0 {
				t.Fatalf("reopen warnings: %v", warns)
			}
			if st := w2.WALStats(); st.Replayed != 3 {
				t.Fatalf("Replayed = %d, want 3 (stats %+v)", st.Replayed, st)
			}
			for i, key := range []string{"a@d1", "b@d1", "c@d2"} {
				if got, want := executed(t, w2, key), uint64(i+2); got != want {
					t.Fatalf("after replay, %s executed = %d, want %d", key, got, want)
				}
			}
			// The replayed records are pending again; a save persists
			// and truncates them.
			if err := w2.Save(ctx); err != nil {
				t.Fatalf("Save after replay: %v", err)
			}
			if st := w2.WALStats(); st.Pending != 0 {
				t.Fatalf("Pending after save = %d, want 0", st.Pending)
			}
			w2.Close(ctx)

			// Third generation: nothing left to replay, data persisted.
			w3, _ := wrap(t, open(t, dir, nil), dir, wal.Options{})
			if st := w3.WALStats(); st.Replayed != 0 {
				t.Fatalf("third open Replayed = %d, want 0", st.Replayed)
			}
			if got := executed(t, w3, "a@d1"); got != 2 {
				t.Fatalf("persisted a@d1 executed = %d, want 2 (no double count)", got)
			}
			w3.Close(ctx)
		})
	}
}

// TestWALReplayIdempotentAfterPartialSave crashes between a save and
// further ingest: replay must re-apply only what the save missed.
func TestWALReplayIdempotentAfterPartialSave(t *testing.T) {
	for name, open := range drivers {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			key := "prog@ds"
			w, _ := wrap(t, open(t, dir, nil), dir, wal.Options{})
			merge := func(w *wal.Store) {
				if err := w.Merge(ctx, mkProfile(key, "ds", []uint64{1}, []uint64{10})); err != nil {
					t.Fatalf("Merge: %v", err)
				}
			}
			merge(w)
			merge(w)
			if err := w.Save(ctx, key); err != nil {
				t.Fatalf("Save: %v", err)
			}
			merge(w) // acked, journaled, never saved
			w.Close(ctx)

			w2, _ := wrap(t, open(t, dir, nil), dir, wal.Options{})
			defer w2.Close(ctx)
			if st := w2.WALStats(); st.Replayed != 1 {
				t.Fatalf("Replayed = %d, want 1 (only the unsaved merge)", st.Replayed)
			}
			if got := executed(t, w2, key); got != 30 {
				t.Fatalf("executed = %d, want 30 (three merges, no double count)", got)
			}
		})
	}
}

// TestWALTornTailTruncated hand-tears the log's tail: replay must
// recover every complete frame and truncate the torn one.
func TestWALTornTailTruncated(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	open := drivers["mem"]
	w, _ := wrap(t, open(t, dir, nil), dir, wal.Options{})
	for _, key := range []string{"a@x", "b@x"} {
		if err := w.Merge(ctx, mkProfile(key, "x", []uint64{3}, []uint64{4})); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	w.Close(ctx)

	// Tear the tail: append half a plausible frame.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v (%v)", segs, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, '{', '"'})
	f.Close()

	w2, warns := wrap(t, open(t, t.TempDir(), nil), dir, wal.Options{})
	defer w2.Close(ctx)
	if len(warns) != 1 || !strings.Contains(warns[0], "torn tail") {
		t.Fatalf("warnings = %v, want one torn-tail warning", warns)
	}
	if got := executed(t, w2, "a@x"); got != 4 {
		t.Fatalf("a@x executed = %d, want 4", got)
	}
	if got := executed(t, w2, "b@x"); got != 4 {
		t.Fatalf("b@x executed = %d, want 4", got)
	}
	// The log keeps working after the repair.
	if err := w2.Merge(ctx, mkProfile("c@x", "x", []uint64{1}, []uint64{2})); err != nil {
		t.Fatalf("Merge after repair: %v", err)
	}
}

// TestWALTornAppendFaultCrashes drives the torn-write crash failpoint:
// the partial frame reaches the medium, the process "dies" (CrashPanic),
// nothing after the torn record is acknowledged, and recovery keeps
// exactly the acknowledged prefix.
func TestWALTornAppendFaultCrashes(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	open := drivers["shard"]
	fs := faults.NewSet(7, faults.Rule{Stage: faults.JournalAppend, Kind: faults.TornWrite, Nth: 2})
	w, _ := wrap(t, open(t, dir, nil), dir, wal.Options{Faults: fs})

	if err := w.Merge(ctx, mkProfile("a@x", "x", []uint64{5}, []uint64{9})); err != nil {
		t.Fatalf("first merge: %v", err)
	}
	func() {
		defer func() {
			if v := recover(); !faults.IsCrash(v) {
				t.Fatalf("recovered %v, want a CrashPanic", v)
			}
		}()
		w.Merge(ctx, mkProfile("b@x", "x", []uint64{5}, []uint64{9}))
		t.Fatal("second merge did not crash")
	}()
	// The journal is broken after the torn write — nothing else acks.
	if err := w.Merge(ctx, mkProfile("c@x", "x", []uint64{1}, []uint64{1})); err == nil {
		t.Fatal("merge after torn append succeeded; want broken-journal error")
	}

	w2, warns := wrap(t, open(t, dir, nil), dir, wal.Options{})
	defer w2.Close(ctx)
	if len(warns) != 1 || !strings.Contains(warns[0], "torn tail") {
		t.Fatalf("warnings = %v, want one torn-tail warning", warns)
	}
	if got := executed(t, w2, "a@x"); got != 9 {
		t.Fatalf("acked a@x executed = %d, want 9", got)
	}
	if got := executed(t, w2, "b@x"); got != 0 {
		t.Fatalf("unacked b@x executed = %d, want 0", got)
	}
}

// TestWALAppendErrorLeavesStoreClean: a clean append failure (Error
// rule) rejects the mutation without touching the wrapped store.
func TestWALAppendErrorLeavesStoreClean(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fs := faults.NewSet(1, faults.Rule{Stage: faults.JournalAppend, Kind: faults.Error})
	w, _ := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{Faults: fs})
	defer w.Close(ctx)
	err := w.Merge(ctx, mkProfile("a@x", "x", []uint64{1}, []uint64{2}))
	if !faults.Is(err) {
		t.Fatalf("Merge = %v, want injected error", err)
	}
	if got := executed(t, w, "a@x"); got != 0 {
		t.Fatalf("store has %d executed after failed append, want 0", got)
	}
	if st := w.WALStats(); st.Pending != 0 {
		t.Fatalf("Pending = %d after failed append, want 0", st.Pending)
	}
}

// TestWALSaveTruncatesLog: once everything is persisted the log
// resets, so steady-state disk use is bounded.
func TestWALSaveTruncatesLog(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w, _ := wrap(t, drivers["shard"](t, dir, nil), dir, wal.Options{SegmentBytes: 256})
	defer w.Close(ctx)
	for i := 0; i < 8; i++ {
		key := []string{"a@x", "b@y", "c@z"}[i%3]
		if err := w.Merge(ctx, mkProfile(key, "d", []uint64{1}, []uint64{2})); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	pre := w.WALStats()
	if pre.Segments < 2 {
		t.Fatalf("expected rolled segments, got %d", pre.Segments)
	}
	if err := w.Save(ctx); err != nil {
		t.Fatalf("Save: %v", err)
	}
	post := w.WALStats()
	if post.Pending != 0 || post.Bytes != 0 {
		t.Fatalf("after save: pending %d, bytes %d; want 0, 0 (stats %+v)", post.Pending, post.Bytes, post)
	}
	if post.Truncated == 0 {
		t.Fatal("no segments truncated")
	}
}

// TestWALDegradedSaveKeepsJournal: a breaker-skipped or failed save
// leaves its records pending, so outage data survives a crash — the
// journal-backed degraded mode.
func TestWALDegradedSaveKeepsJournal(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := "outage@ds"
	// Every shard save fails: the store degrades, the journal holds.
	fs := faults.NewSet(3, faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Label: "shard-"})
	w, _ := wrap(t, drivers["shard"](t, dir, fs), dir, wal.Options{})
	if err := w.Merge(ctx, mkProfile(key, "ds", []uint64{2}, []uint64{6})); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if err := w.Save(ctx, key); err == nil {
		t.Fatal("Save succeeded despite injected shard failure")
	}
	if st := w.WALStats(); st.Pending != 1 {
		t.Fatalf("Pending = %d after failed save, want 1", st.Pending)
	}
	w.Close(ctx)

	// Crash during the outage; the disk heals; reopen recovers.
	w2, _ := wrap(t, drivers["shard"](t, dir, nil), dir, wal.Options{})
	defer w2.Close(ctx)
	if got := executed(t, w2, key); got != 6 {
		t.Fatalf("outage data executed = %d, want 6", got)
	}
}

// TestWALConflictSkippedOnReplay: a journaled record that can no
// longer apply (conflicting site table) is skipped with a warning
// instead of wedging recovery.
func TestWALConflictSkippedOnReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := "prog@ds"
	w, _ := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{})
	if err := w.Merge(ctx, mkProfile(key, "ds", []uint64{1, 2}, []uint64{3, 4})); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	w.Close(ctx) // crash: record journaled, never saved

	// Behind the journal's back, persist a conflicting shape (a
	// different compilation) under the same key.
	direct, _, err := memstore.Open(ctx, filepath.Join(dir, "profiles.db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Put(ctx, mkProfile(key, "ds", []uint64{9}, []uint64{9})); err != nil {
		t.Fatal(err)
	}
	if err := direct.Save(ctx); err != nil {
		t.Fatal(err)
	}
	direct.Close(ctx)

	w2, warns := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{})
	defer w2.Close(ctx)
	if len(warns) != 1 || !strings.Contains(warns[0], "skipped") {
		t.Fatalf("warnings = %v, want one skip warning", warns)
	}
	p, err := w2.Get(ctx, key)
	if err != nil || p == nil {
		t.Fatalf("Get: %v, %v", p, err)
	}
	if p.Sites() != 1 {
		t.Fatalf("store holds %d sites, want the direct write's 1", p.Sites())
	}
}

// TestWALCrashDuringReplay: a crash mid-replay restarts recovery from
// scratch with nothing double-applied — staged watermarks were never
// persisted.
func TestWALCrashDuringReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	open := drivers["shard"]
	w, _ := wrap(t, open(t, dir, nil), dir, wal.Options{})
	for _, key := range []string{"a@x", "b@x", "c@x"} {
		if err := w.Merge(ctx, mkProfile(key, "x", []uint64{1}, []uint64{5})); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	w.Close(ctx)

	fs := faults.NewSet(1, faults.Rule{Stage: faults.JournalReplay, Kind: faults.Crash, Nth: 2})
	func() {
		defer func() {
			if v := recover(); !faults.IsCrash(v) {
				t.Fatalf("recovered %v, want CrashPanic", v)
			}
		}()
		wal.Wrap(ctx, open(t, dir, nil), filepath.Join(dir, "wal"), wal.Options{Faults: fs})
		t.Fatal("Wrap survived the replay crash")
	}()

	w2, warns := wrap(t, open(t, dir, nil), dir, wal.Options{})
	defer w2.Close(ctx)
	if len(warns) != 0 {
		t.Fatalf("clean reopen warnings: %v", warns)
	}
	for _, key := range []string{"a@x", "b@x", "c@x"} {
		if got := executed(t, w2, key); got != 5 {
			t.Fatalf("%s executed = %d, want 5 (exactly once)", key, got)
		}
	}
}

// TestWALFsyncPolicies exercises construction and the commit points of
// each policy.
func TestWALFsyncPolicies(t *testing.T) {
	ctx := context.Background()
	t.Run("record", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{Fsync: wal.FsyncRecord})
		defer w.Close(ctx)
		w.Merge(ctx, mkProfile("a@x", "x", []uint64{1}, []uint64{2}))
		if st := w.WALStats(); st.Syncs == 0 {
			t.Fatal("record policy performed no sync on append")
		}
	})
	t.Run("batch", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{Fsync: wal.FsyncBatch})
		defer w.Close(ctx)
		w.Merge(ctx, mkProfile("a@x", "x", []uint64{1}, []uint64{2}))
		if st := w.WALStats(); st.Syncs != 0 {
			t.Fatalf("batch policy synced on append (%d syncs)", st.Syncs)
		}
		if err := w.Sync(ctx); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		if st := w.WALStats(); st.Syncs != 1 {
			t.Fatalf("Syncs = %d after explicit Sync, want 1", st.Syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := wrap(t, drivers["mem"](t, dir, nil), dir,
			wal.Options{Fsync: wal.FsyncInterval, Interval: time.Millisecond})
		defer w.Close(ctx)
		w.Merge(ctx, mkProfile("a@x", "x", []uint64{1}, []uint64{2}))
		deadline := time.Now().Add(2 * time.Second)
		for w.WALStats().Syncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("interval policy never synced")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("bogus", func(t *testing.T) {
		dir := t.TempDir()
		inner := drivers["mem"](t, dir, nil)
		if _, _, err := wal.Wrap(ctx, inner, filepath.Join(dir, "wal"), wal.Options{Fsync: "sometimes"}); err == nil {
			t.Fatal("bogus fsync policy accepted")
		}
	})
}

// noCheckpoint hides memstore's Checkpointed methods behind the plain
// interface, to prove Wrap refuses drivers it cannot checkpoint.
type noCheckpoint struct{ store.Store }

func TestWALWrapRequiresCheckpointed(t *testing.T) {
	dir := t.TempDir()
	inner := noCheckpoint{drivers["mem"](t, dir, nil)}
	if _, _, err := wal.Wrap(context.Background(), inner, filepath.Join(dir, "wal"), wal.Options{}); err == nil {
		t.Fatal("Wrap accepted a store without checkpoint support")
	}
}

// TestWALAuditVerify exercises the offline segment audit: a healthy
// log passes, a flipped byte in a non-final segment is a problem, and
// an impossible watermark is flagged.
func TestWALAuditVerify(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w, _ := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{SegmentBytes: 128})
	for i := 0; i < 6; i++ {
		if err := w.Merge(ctx, mkProfile("a@x", "x", []uint64{1}, []uint64{2})); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	w.Close(ctx)
	walDir := filepath.Join(dir, "wal")

	a, err := wal.VerifySegments(walDir)
	if err != nil {
		t.Fatalf("VerifySegments: %v", err)
	}
	if len(a.Problems) != 0 || a.TornTail != "" {
		t.Fatalf("healthy log audit: problems %v, torn %q", a.Problems, a.TornTail)
	}
	if a.Records != 6 || a.MinSeq != 1 || a.MaxSeq != 6 {
		t.Fatalf("audit shape = %d records [%d,%d], want 6 [1,6]", a.Records, a.MinSeq, a.MaxSeq)
	}
	if p := a.CheckWatermark("shard-000", 3); p != "" {
		t.Fatalf("valid watermark flagged: %s", p)
	}
	if p := a.CheckWatermark("shard-000", 99); p == "" {
		t.Fatal("impossible watermark (99 > max 6) not flagged")
	}

	// Flip a byte in the first segment's first record body.
	segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	sort.Strings(segs)
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	a2, err := wal.VerifySegments(walDir)
	if err != nil {
		t.Fatalf("VerifySegments (corrupt): %v", err)
	}
	if len(a2.Problems) == 0 {
		t.Fatal("corrupt non-final segment produced no problems")
	}
}

// TestWALDumpSegment smoke-tests the debug dump.
func TestWALDumpSegment(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w, _ := wrap(t, drivers["mem"](t, dir, nil), dir, wal.Options{})
	w.Merge(ctx, mkProfile("a@x", "x", []uint64{1}, []uint64{2}))
	w.Delete(ctx, "a@x")
	w.Close(ctx)
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	sort.Strings(segs)
	var sb strings.Builder
	if err := wal.DumpSegment(&sb, segs[0]); err != nil {
		t.Fatalf("DumpSegment: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"seq=1", "merge", "seq=2", "delete", "a@x", "end of segment"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if err := wal.DumpSegment(&sb, filepath.Join(dir, "nope.seg")); err == nil {
		t.Fatal("dump of a missing segment succeeded")
	}
}

// TestWALLoadReplays: Load re-reads the driver and replays the log on
// top, same as a reopen.
func TestWALLoadReplays(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := "prog@ds"
	w, _ := wrap(t, drivers["shard"](t, dir, nil), dir, wal.Options{})
	defer w.Close(ctx)
	w.Merge(ctx, mkProfile(key, "ds", []uint64{1}, []uint64{7}))
	if err := w.Save(ctx, key); err != nil {
		t.Fatalf("Save: %v", err)
	}
	w.Merge(ctx, mkProfile(key, "ds", []uint64{1}, []uint64{7})) // journaled only
	if err := w.Load(ctx); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := executed(t, w, key); got != 14 {
		t.Fatalf("after Load, executed = %d, want 14", got)
	}
}

// TestWALErrorsPreserveDegraded: ErrDegraded from a breaker-skipped
// shard save stays detectable through the journal's error joining.
func TestWALErrorsPreserveDegraded(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	key := "prog@ds"
	fs := faults.NewSet(3, faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Label: "shard-"})
	inner, _, err := shardstore.Open(ctx, filepath.Join(dir, "profiles.d"),
		store.Options{Shards: 2, Faults: fs, BreakerThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := wrap(t, inner, dir, wal.Options{})
	defer w.Close(ctx)
	w.Merge(ctx, mkProfile(key, "ds", []uint64{1}, []uint64{2}))
	if err := w.Save(ctx, key); err == nil {
		t.Fatal("first save succeeded despite injected fault")
	}
	w.Merge(ctx, mkProfile(key, "ds", []uint64{1}, []uint64{2}))
	err = w.Save(ctx, key) // breaker open now: skipped
	if !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("second save error = %v, want ErrDegraded", err)
	}
}

package store_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"branchprof/internal/ifprob"
	"branchprof/internal/store"
	"branchprof/internal/store/memstore"   // linked driver: "mem"
	"branchprof/internal/store/shardstore" // linked driver: "shard"
)

// mkProfile builds a consistent profile under key (already in
// program@dataset form) with the given per-site counters.
func mkProfile(key, dataset string, taken, total []uint64) *ifprob.Profile {
	return &ifprob.Profile{
		Program: key,
		Dataset: dataset,
		Taken:   append([]uint64(nil), taken...),
		Total:   append([]uint64(nil), total...),
		Instrs:  100,
	}
}

// openFns maps driver names to constructors used by the conformance
// suite. Paths are chosen so auto-detection picks the right driver.
var openFns = map[string]func(t *testing.T) (store.Store, string){
	"mem": func(t *testing.T) (store.Store, string) {
		path := filepath.Join(t.TempDir(), "profiles.db")
		s, warns, err := store.Open(context.Background(), path, store.Options{})
		if err != nil {
			t.Fatalf("open mem: %v", err)
		}
		if len(warns) != 0 {
			t.Fatalf("open mem: unexpected warnings %v", warns)
		}
		return s, path
	},
	"shard": func(t *testing.T) (store.Store, string) {
		path := filepath.Join(t.TempDir(), "profiles.d")
		s, warns, err := store.Open(context.Background(), path, store.Options{Shards: 4})
		if err != nil {
			t.Fatalf("open shard: %v", err)
		}
		if len(warns) != 0 {
			t.Fatalf("open shard: unexpected warnings %v", warns)
		}
		return s, path
	},
}

// reopen opens whatever Open left at path, auto-detected.
func reopen(t *testing.T, path string) store.Store {
	t.Helper()
	s, warns, err := store.Open(context.Background(), path, store.Options{})
	if err != nil {
		t.Fatalf("reopen %s: %v", path, err)
	}
	if len(warns) != 0 {
		t.Fatalf("reopen %s: unexpected warnings %v", path, warns)
	}
	return s
}

// TestConformance runs the Store contract against every driver.
func TestConformance(t *testing.T) {
	for name, open := range openFns {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			s, path := open(t)
			if got := s.Stats().Driver; got != name {
				t.Fatalf("Stats().Driver = %q, want %q", got, name)
			}

			// Empty store.
			if p, err := s.Get(ctx, "absent@x"); err != nil || p != nil {
				t.Fatalf("Get on empty store = %v, %v", p, err)
			}
			if keys, err := s.Keys(ctx); err != nil || len(keys) != 0 {
				t.Fatalf("Keys on empty store = %v, %v", keys, err)
			}

			// Merge accumulates commutatively under the key.
			a := mkProfile("prog@da", "da", []uint64{1, 0}, []uint64{2, 3})
			b := mkProfile("prog@da", "da", []uint64{4, 1}, []uint64{4, 1})
			if err := s.Merge(ctx, a); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if err := s.Merge(ctx, b); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			got, err := s.Get(ctx, "prog@da")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if want := []uint64{5, 1}; !reflect.DeepEqual(got.Taken, want) {
				t.Fatalf("accumulated Taken = %v, want %v", got.Taken, want)
			}
			if want := []uint64{6, 4}; !reflect.DeepEqual(got.Total, want) {
				t.Fatalf("accumulated Total = %v, want %v", got.Total, want)
			}

			// Get returns a copy, not a live alias.
			got.Taken[0] = 999
			if again, _ := s.Get(ctx, "prog@da"); again.Taken[0] != 5 {
				t.Fatal("Get returned a live alias into the store")
			}

			// A shape conflict is ErrConflict and leaves data unchanged.
			bad := mkProfile("prog@da", "da", []uint64{1}, []uint64{1})
			if err := s.Merge(ctx, bad); !errors.Is(err, store.ErrConflict) {
				t.Fatalf("conflicting merge: %v, want ErrConflict", err)
			}
			if p, _ := s.Get(ctx, "prog@da"); p.Taken[0] != 5 {
				t.Fatal("failed merge mutated the stored profile")
			}

			// More keys, then Keys/Snapshot agree.
			if err := s.Merge(ctx, mkProfile("other@db", "db", []uint64{0}, []uint64{7})); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			keys, err := s.Keys(ctx)
			if err != nil {
				t.Fatalf("Keys: %v", err)
			}
			if want := []string{"other@db", "prog@da"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("Keys = %v, want %v", keys, want)
			}
			snap, err := s.Snapshot(ctx)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if len(snap) != 2 || snap["prog@da"].Total[0] != 6 {
				t.Fatalf("Snapshot = %v", snap)
			}

			// Put replaces wholesale — no accumulation, any shape.
			repl := mkProfile("prog@da", "dz", []uint64{9}, []uint64{9})
			if err := s.Put(ctx, repl); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if p, _ := s.Get(ctx, "prog@da"); p == nil || len(p.Total) != 1 || p.Total[0] != 9 {
				t.Fatalf("Put did not replace: %+v", p)
			}
			// Put copies: mutating the argument must not reach the store.
			repl.Taken[0] = 123
			if p, _ := s.Get(ctx, "prog@da"); p.Taken[0] == 123 {
				t.Fatal("Put kept a live alias to the caller's profile")
			}

			// Delete removes; deleting again is a no-op.
			if err := s.Delete(ctx, "prog@da"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if p, _ := s.Get(ctx, "prog@da"); p != nil {
				t.Fatalf("Delete left %+v", p)
			}
			if err := s.Delete(ctx, "prog@da"); err != nil {
				t.Fatalf("Delete of absent key: %v", err)
			}

			// Restore the accumulated state (a merged with b) so the
			// persistence checks below exercise the original two-key view.
			restored := mkProfile("prog@da", "da", []uint64{5, 1}, []uint64{6, 4})
			restored.Instrs = 200
			if err := s.Put(ctx, restored); err != nil {
				t.Fatalf("Put: %v", err)
			}

			// Save, then a fresh open sees identical contents.
			if err := s.Save(ctx); err != nil {
				t.Fatalf("Save: %v", err)
			}
			if err := s.Close(ctx); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s2 := reopen(t, path)
			snap2, err := s2.Snapshot(ctx)
			if err != nil {
				t.Fatalf("Snapshot after reopen: %v", err)
			}
			if !reflect.DeepEqual(snap, snap2) {
				t.Fatalf("reopen changed contents:\n  saved: %+v\n  loaded: %+v", snap, snap2)
			}

			// Load discards unsaved changes, restoring the persisted view.
			if err := s2.Merge(ctx, mkProfile("volatile@dx", "dx", []uint64{1}, []uint64{1})); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if err := s2.Load(ctx); err != nil {
				t.Fatalf("Load: %v", err)
			}
			if p, _ := s2.Get(ctx, "volatile@dx"); p != nil {
				t.Fatal("Load kept an unsaved key")
			}

			// Context cancellation is honoured before touching state.
			canceled, cancel := context.WithCancel(ctx)
			cancel()
			if err := s2.Merge(canceled, a); !errors.Is(err, context.Canceled) {
				t.Fatalf("Merge with canceled ctx: %v", err)
			}
			if _, err := s2.Get(canceled, "prog@da"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Get with canceled ctx: %v", err)
			}
			if err := s2.Save(canceled); !errors.Is(err, context.Canceled) {
				t.Fatalf("Save with canceled ctx: %v", err)
			}
			if err := s2.Put(canceled, a); !errors.Is(err, context.Canceled) {
				t.Fatalf("Put with canceled ctx: %v", err)
			}
			if err := s2.Delete(canceled, "prog@da"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Delete with canceled ctx: %v", err)
			}
		})
	}
}

// TestDifferential drives memstore and shardstore through the same
// pseudo-random operation sequence and requires identical results at
// every probe point — the sharded store must be observationally
// indistinguishable from the reference single-file store.
func TestDifferential(t *testing.T) {
	ctx := context.Background()
	memPath := filepath.Join(t.TempDir(), "profiles.db")
	shardPath := filepath.Join(t.TempDir(), "profiles.d")
	mem, _, err := store.Open(ctx, memPath, store.Options{Driver: "mem"})
	if err != nil {
		t.Fatalf("open mem: %v", err)
	}
	shard, _, err := store.Open(ctx, shardPath, store.Options{Driver: "shard", Shards: 8})
	if err != nil {
		t.Fatalf("open shard: %v", err)
	}

	rng := rand.New(rand.NewSource(42))
	const programs = 13 // spread across 8 shards, some sharing
	sites := func(p int) int { return 1 + p%5 }
	key := func(p, d int) string { return fmt.Sprintf("prog%02d@ds%d", p, d) }

	randomProfile := func() *ifprob.Profile {
		p, d := rng.Intn(programs), rng.Intn(3)
		n := sites(p)
		taken, total := make([]uint64, n), make([]uint64, n)
		for i := range total {
			total[i] = uint64(rng.Intn(50))
			if total[i] > 0 {
				taken[i] = uint64(rng.Int63n(int64(total[i] + 1)))
			}
		}
		return mkProfile(key(p, d), fmt.Sprintf("ds%d", d), taken, total)
	}

	check := func(step int) {
		t.Helper()
		mk, err1 := mem.Keys(ctx)
		sk, err2 := shard.Keys(ctx)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: Keys: %v / %v", step, err1, err2)
		}
		if !reflect.DeepEqual(mk, sk) {
			t.Fatalf("step %d: keys diverged:\n  mem:   %v\n  shard: %v", step, mk, sk)
		}
		ms, err1 := mem.Snapshot(ctx)
		ss, err2 := shard.Snapshot(ctx)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: Snapshot: %v / %v", step, err1, err2)
		}
		if !reflect.DeepEqual(ms, ss) {
			t.Fatalf("step %d: snapshots diverged", step)
		}
	}

	const steps = 600
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 7: // merge
			p := randomProfile()
			err1 := mem.Merge(ctx, p.Clone())
			err2 := shard.Merge(ctx, p)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d: merge divergence: mem=%v shard=%v", i, err1, err2)
			}
		case op < 8 && i%3 == 0: // replace wholesale
			p := randomProfile()
			if err := mem.Put(ctx, p.Clone()); err != nil {
				t.Fatalf("step %d: mem put: %v", i, err)
			}
			if err := shard.Put(ctx, p); err != nil {
				t.Fatalf("step %d: shard put: %v", i, err)
			}
		case op < 8 && i%3 == 1: // delete
			k := key(rng.Intn(programs), rng.Intn(3))
			if err := mem.Delete(ctx, k); err != nil {
				t.Fatalf("step %d: mem delete: %v", i, err)
			}
			if err := shard.Delete(ctx, k); err != nil {
				t.Fatalf("step %d: shard delete: %v", i, err)
			}
		case op < 8: // save everything
			if err := mem.Save(ctx); err != nil {
				t.Fatalf("step %d: mem save: %v", i, err)
			}
			if err := shard.Save(ctx); err != nil {
				t.Fatalf("step %d: shard save: %v", i, err)
			}
		case op < 9: // save one key's shard
			k := key(rng.Intn(programs), rng.Intn(3))
			if err := mem.Save(ctx, k); err != nil {
				t.Fatalf("step %d: mem save(%s): %v", i, k, err)
			}
			if err := shard.Save(ctx, k); err != nil {
				t.Fatalf("step %d: shard save(%s): %v", i, k, err)
			}
		default: // flush, then reload from disk — both must round-trip
			if err := mem.Save(ctx); err != nil {
				t.Fatalf("step %d: mem save: %v", i, err)
			}
			if err := shard.Save(ctx); err != nil {
				t.Fatalf("step %d: shard save: %v", i, err)
			}
			if err := mem.Load(ctx); err != nil {
				t.Fatalf("step %d: mem load: %v", i, err)
			}
			if err := shard.Load(ctx); err != nil {
				t.Fatalf("step %d: shard load: %v", i, err)
			}
		}
		if i%50 == 49 {
			check(i)
		}
	}

	// Final flush, fresh opens, and the persisted states must agree too.
	if err := mem.Save(ctx); err != nil {
		t.Fatalf("final mem save: %v", err)
	}
	if err := shard.Save(ctx); err != nil {
		t.Fatalf("final shard save: %v", err)
	}
	check(steps)

	mem2 := reopen(t, memPath)
	shard2 := reopen(t, shardPath)
	ms, _ := mem2.Snapshot(ctx)
	ss, _ := shard2.Snapshot(ctx)
	if !reflect.DeepEqual(ms, ss) {
		t.Fatal("persisted states diverged after reopen")
	}
	if len(ms) == 0 {
		t.Fatal("differential run ended with an empty store — sequence too weak")
	}
	if st := shard2.Stats(); len(st.Shards) != 8 {
		t.Fatalf("shard store reopened with %d shards, want 8", len(st.Shards))
	}
}

// TestMigration proves the single-file → sharded migration is
// lossless: every profile round-trips bit-identically and the
// original file is preserved untouched as .pre-shard.
func TestMigration(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "profiles.db")

	// Build a legacy single-file database the old-fashioned way.
	legacy := ifprob.NewDB()
	for p := 0; p < 11; p++ {
		for d := 0; d < 2; d++ {
			n := 1 + p%4
			taken, total := make([]uint64, n), make([]uint64, n)
			for i := range total {
				total[i] = uint64(3*p + 7*d + i)
				taken[i] = total[i] / 2
			}
			prof := mkProfile(fmt.Sprintf("prog%02d@ds%d", p, d), fmt.Sprintf("ds%d", d), taken, total)
			if err := legacy.Add(prof); err != nil {
				t.Fatalf("seeding legacy db: %v", err)
			}
		}
	}
	if err := legacy.Save(path); err != nil {
		t.Fatalf("saving legacy db: %v", err)
	}
	originalBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*ifprob.Profile{}
	for _, name := range legacy.Programs() {
		want[name] = legacy.Get(name)
	}

	// Opening with Shards > 0 migrates in place.
	s, warns, err := store.Open(ctx, path, store.Options{Shards: 4})
	if err != nil {
		t.Fatalf("migrating open: %v", err)
	}
	if len(warns) != 1 || !contains(warns[0], "migrated single-file database") {
		t.Fatalf("migration warnings = %v", warns)
	}
	if st := s.Stats(); st.Driver != "shard" || len(st.Shards) != 4 {
		t.Fatalf("post-migration stats = %+v", st)
	}

	// Bit-identical profiles.
	snap, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("migration changed profiles:\n  want %+v\n  got  %+v", want, snap)
	}

	// The original survives, byte-for-byte, as .pre-shard; the path is
	// now a directory with a manifest.
	backup, err := os.ReadFile(path + ".pre-shard")
	if err != nil {
		t.Fatalf("reading .pre-shard backup: %v", err)
	}
	if string(backup) != string(originalBytes) {
		t.Fatal(".pre-shard backup differs from the original file")
	}
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("migrated path is not a directory: %v, %v", fi, err)
	}
	if _, err := os.Stat(filepath.Join(path, store.ManifestName)); err != nil {
		t.Fatalf("no manifest after migration: %v", err)
	}

	// A second open (no Shards hint) auto-detects the sharded store and
	// sees the same data.
	s2 := reopen(t, path)
	snap2, err := s2.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot after reopen: %v", err)
	}
	if !reflect.DeepEqual(snap2, want) {
		t.Fatal("sharded store reopened with different profiles")
	}

	// Migration refuses to clobber an existing backup.
	again := filepath.Join(t.TempDir(), "again.db")
	if err := legacy.Save(again); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(again+".pre-shard", []byte("old backup"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Open(ctx, again, store.Options{Shards: 4}); err == nil || !contains(err.Error(), "pre-shard") {
		t.Fatalf("migration over existing backup: %v, want refusal", err)
	}
}

// TestOpenDetect covers the driver auto-detection matrix.
func TestOpenDetect(t *testing.T) {
	ctx := context.Background()

	// Empty path: in-memory mem store.
	s, _, err := store.Open(ctx, "", store.Options{})
	if err != nil {
		t.Fatalf("open(\"\"): %v", err)
	}
	if st := s.Stats(); st.Driver != "mem" || st.Persistent {
		t.Fatalf("open(\"\") stats = %+v", st)
	}

	// Missing path, no shards: mem.
	p1 := filepath.Join(t.TempDir(), "new.db")
	s1, _, err := store.Open(ctx, p1, store.Options{})
	if err != nil {
		t.Fatalf("open(missing): %v", err)
	}
	if st := s1.Stats(); st.Driver != "mem" || !st.Persistent {
		t.Fatalf("open(missing) stats = %+v", st)
	}

	// Missing path, shards requested: shard.
	p2 := filepath.Join(t.TempDir(), "new.d")
	s2, _, err := store.Open(ctx, p2, store.Options{Shards: 2})
	if err != nil {
		t.Fatalf("open(missing, shards): %v", err)
	}
	if st := s2.Stats(); st.Driver != "shard" || len(st.Shards) != 2 {
		t.Fatalf("open(missing, shards) stats = %+v", st)
	}

	// Unknown driver names the registered ones.
	if _, _, err := store.Open(ctx, "", store.Options{Driver: "bogus"}); err == nil || !contains(err.Error(), "not linked in") {
		t.Fatalf("open(bogus driver): %v", err)
	}

	// Registry lists both linked drivers.
	if got := store.Drivers(); !reflect.DeepEqual(got, []string{"mem", "shard"}) {
		t.Fatalf("Drivers() = %v", got)
	}

	// The concrete types actually implement the interface (compile-time
	// check made explicit).
	var _ store.Store = (*memstore.Store)(nil)
	var _ store.Store = (*shardstore.Store)(nil)
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// Package faults is a deterministic, seeded fault-injection framework
// for the measurement pipeline. Production code carries a *Set pointer
// (normally nil) and consults it at named stages; a nil set injects
// nothing and costs one pointer comparison, so the instrumentation has
// zero overhead when disabled.
//
// A Set is built from Rules. Each rule names a Stage (compile, run,
// profile, cache-read, cache-write, db-save, db-load), a Kind of fault
// (error, panic, delay, torn write), and a match condition: the Nth
// call at that stage, a substring of the operation label (for the
// engine, "program/dataset"), or a seeded probability. Matching is
// deterministic: the same seed and the same sequence of Fire calls
// always inject the same faults, so chaos tests are reproducible.
//
// See docs/ROBUSTNESS.md for how internal/engine, internal/exp and
// internal/ifprob respond to each injected fault.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Stage names one instrumentation point in the pipeline.
type Stage string

// The instrumented stages — the axes of the fault matrix.
const (
	Compile    Stage = "compile"
	Run        Stage = "run"
	Profile    Stage = "profile"
	CacheRead  Stage = "cache-read"
	CacheWrite Stage = "cache-write"
	DBSave     Stage = "db-save"
	DBLoad     Stage = "db-load"
	// PeerFetch is consulted before every anti-entropy HTTP exchange a
	// branchprofd node makes with a peer (label = the peer's base URL).
	// Error rules model a network partition, Delay rules a slow link.
	PeerFetch Stage = "peer-fetch"
	// The journal stages are consulted by internal/store/wal around the
	// write-ahead log's four crash-relevant operations. Labels are the
	// record's store key (append), the segment path (sync, truncate) or
	// the replayed record's key (replay). TornWrite rules at
	// JournalAppend leave a partial frame on disk and then crash —
	// a torn tail, the canonical WAL failure.
	JournalAppend   Stage = "journal-append"
	JournalSync     Stage = "journal-sync"
	JournalTruncate Stage = "journal-truncate"
	JournalReplay   Stage = "journal-replay"
)

// Stages returns every instrumented stage, in pipeline order.
func Stages() []Stage {
	return []Stage{Compile, Run, Profile, CacheRead, CacheWrite, DBSave, DBLoad, PeerFetch,
		JournalAppend, JournalSync, JournalTruncate, JournalReplay}
}

// Kind classifies what an injector does when it fires.
type Kind uint8

// Fault kinds.
const (
	// Error makes the instrumented operation return an injected error.
	Error Kind = iota
	// Panic makes the instrumentation point panic.
	Panic
	// Delay sleeps before the operation proceeds normally.
	Delay
	// TornWrite truncates a write partway through; it only applies at
	// write-shaped stages consulted through Torn.
	TornWrite
	// Crash simulates a process kill at the instrumentation point: Fire
	// panics with a *CrashPanic, which the crash-consistency harness
	// catches at the top of the stack, abandons every in-memory
	// structure, and reopens the store from disk — the closest a test
	// can get to SIGKILL without forking. Production recovery middleware
	// treats it like any other panic (the request fails un-acked).
	Crash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case TornWrite:
		return "torn-write"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule is one injector: where it applies and what it does.
type Rule struct {
	// Stage restricts the rule to one instrumentation point; empty
	// matches every stage.
	Stage Stage
	// Kind is what happens when the rule fires.
	Kind Kind
	// Nth, when non-zero, fires only on the Nth matching call at the
	// stage (1-based). Zero means every matching call (subject to
	// Through and Prob).
	Nth uint64
	// Through, when non-zero and Nth is zero, fires only on calls 1
	// through Through (1-based, inclusive) — a fault window that heals
	// deterministically, e.g. a network partition that lifts after the
	// first N sync attempts.
	Through uint64
	// Label, when non-empty, requires the operation label to contain
	// it as a substring (the engine labels operations "program/dataset").
	Label string
	// Prob, when in (0,1) and Nth is zero, fires with this probability
	// drawn from the set's seeded generator.
	Prob float64
	// Delay is the sleep for Delay rules; 0 means 500µs.
	Delay time.Duration
	// Err overrides the injected error for Error rules; nil means an
	// *InjectedError wrapping ErrInjected.
	Err error
}

// ErrInjected is the sentinel every injected error wraps; retry
// policies treat it as transient.
var ErrInjected = errors.New("injected fault")

// Is reports whether err originates from a fault injector.
func Is(err error) bool { return errors.Is(err, ErrInjected) }

// InjectedError reports where an injected error fired.
type InjectedError struct {
	Stage Stage
	Label string
	Call  uint64 // 1-based call count at the stage when the rule fired
}

// Error describes the injection point.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: %s %q call %d: injected fault", e.Stage, e.Label, e.Call)
}

// Unwrap ties every injected error to ErrInjected.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// InjectedPanic is the value injected panics carry, so recovery code
// (and tests) can tell an injected panic from a genuine bug.
type InjectedPanic struct {
	Stage Stage
	Label string
	Call  uint64
}

// String describes the injection point.
func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faults: %s %q call %d: injected panic", p.Stage, p.Label, p.Call)
}

// CrashPanic is the value Crash rules panic with: a simulated process
// kill. Harnesses catch it at the top of the stack with IsCrash and
// reopen from disk; everything the process held in memory at that
// moment is considered lost.
type CrashPanic struct {
	Stage Stage
	Label string
	Call  uint64
}

// String describes the crash point.
func (p *CrashPanic) String() string {
	return fmt.Sprintf("faults: %s %q call %d: injected crash", p.Stage, p.Label, p.Call)
}

// IsCrash reports whether a recovered panic value is a simulated
// process crash from a Crash rule.
func IsCrash(v any) bool {
	_, ok := v.(*CrashPanic)
	return ok
}

// Set is an active collection of injectors. A nil *Set is valid and
// injects nothing; all methods are safe for concurrent use.
type Set struct {
	mu        sync.Mutex
	rng       *rand.Rand
	rules     []Rule
	calls     map[Stage]uint64 // Fire consultations per stage
	tornCalls map[Stage]uint64 // Torn consultations per stage
	fired     map[Stage]uint64 // faults actually injected per stage
}

// NewSet builds a set from seed and rules. The seed drives every
// probabilistic decision (Prob rules, torn-write lengths), so equal
// seeds and call sequences inject identically.
func NewSet(seed int64, rules ...Rule) *Set {
	return &Set{
		rng:       rand.New(rand.NewSource(seed)),
		rules:     rules,
		calls:     make(map[Stage]uint64),
		tornCalls: make(map[Stage]uint64),
		fired:     make(map[Stage]uint64),
	}
}

// match reports whether r applies to the call (stage, label, n) —
// probability is evaluated by the caller holding the lock.
func (s *Set) match(r *Rule, stage Stage, label string, n uint64) bool {
	if r.Stage != "" && r.Stage != stage {
		return false
	}
	if r.Label != "" && !strings.Contains(label, r.Label) {
		return false
	}
	if r.Nth != 0 {
		return r.Nth == n
	}
	if r.Through != 0 && n > r.Through {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 {
		return s.rng.Float64() < r.Prob
	}
	return true
}

// Fire consults the set at one instrumentation point. It returns an
// error to inject, panics for Panic rules, and sleeps for Delay rules
// before returning nil. TornWrite rules are ignored here (see Torn).
// A nil receiver is a no-op.
func (s *Set) Fire(stage Stage, label string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.calls[stage]++
	n := s.calls[stage]
	var hit *Rule
	for i := range s.rules {
		r := &s.rules[i]
		if r.Kind == TornWrite {
			continue
		}
		if s.match(r, stage, label, n) {
			hit = r
			break
		}
	}
	if hit == nil {
		s.mu.Unlock()
		return nil
	}
	s.fired[stage]++
	kind, delay, override := hit.Kind, hit.Delay, hit.Err
	s.mu.Unlock()

	switch kind {
	case Panic:
		panic(&InjectedPanic{Stage: stage, Label: label, Call: n})
	case Crash:
		panic(&CrashPanic{Stage: stage, Label: label, Call: n})
	case Delay:
		if delay <= 0 {
			delay = 500 * time.Microsecond
		}
		time.Sleep(delay)
		return nil
	default: // Error
		if override != nil {
			return override
		}
		return &InjectedError{Stage: stage, Label: label, Call: n}
	}
}

// Torn consults torn-write rules at a write of n bytes and returns how
// many bytes should actually reach the medium: n for a clean write,
// fewer for a torn one (seeded-deterministically chosen, always < n).
// A nil receiver always returns n.
func (s *Set) Torn(stage Stage, label string, n int) int {
	if s == nil || n <= 0 {
		return n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tornCalls[stage]++
	c := s.tornCalls[stage]
	for i := range s.rules {
		r := &s.rules[i]
		if r.Kind != TornWrite {
			continue
		}
		if s.match(r, stage, label, c) {
			s.fired[stage]++
			return s.rng.Intn(n) // in [0, n)
		}
	}
	return n
}

// Fired returns how many faults have been injected at stage.
func (s *Set) Fired(stage Stage) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[stage]
}

// Calls returns how many times stage was consulted through Fire.
func (s *Set) Calls(stage Stage) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[stage]
}

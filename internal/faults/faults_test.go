package faults

import (
	"errors"
	"testing"
	"time"
)

func TestFaultNilSetIsNoOp(t *testing.T) {
	var s *Set
	if err := s.Fire(Run, "p/d"); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	if n := s.Torn(CacheWrite, "p/d", 100); n != 100 {
		t.Fatalf("nil set tore write to %d bytes", n)
	}
	if s.Fired(Run) != 0 || s.Calls(Run) != 0 {
		t.Fatal("nil set reported activity")
	}
}

func TestFaultNthFiresExactlyOnce(t *testing.T) {
	s := NewSet(1, Rule{Stage: CacheRead, Kind: Error, Nth: 3})
	for i := 1; i <= 5; i++ {
		err := s.Fire(CacheRead, "p/d")
		if (err != nil) != (i == 3) {
			t.Fatalf("call %d: err = %v", i, err)
		}
		if i == 3 {
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Call != 3 || ie.Stage != CacheRead {
				t.Fatalf("injected error = %#v", err)
			}
			if !Is(err) {
				t.Fatal("injected error not recognized by Is")
			}
		}
	}
	if s.Fired(CacheRead) != 1 || s.Calls(CacheRead) != 5 {
		t.Fatalf("fired=%d calls=%d", s.Fired(CacheRead), s.Calls(CacheRead))
	}
}

func TestFaultLabelSubstringMatch(t *testing.T) {
	s := NewSet(1, Rule{Stage: Run, Kind: Error, Label: "gcc/"})
	if err := s.Fire(Run, "li/8queens"); err != nil {
		t.Fatalf("non-matching label fired: %v", err)
	}
	if err := s.Fire(Run, "gcc/decls"); err == nil {
		t.Fatal("matching label did not fire")
	}
	// A different stage never matches a stage-scoped rule.
	if err := s.Fire(Compile, "gcc/decls"); err != nil {
		t.Fatalf("wrong stage fired: %v", err)
	}
}

func TestFaultStageWildcard(t *testing.T) {
	s := NewSet(1, Rule{Kind: Error}) // empty Stage matches everywhere
	for _, st := range Stages() {
		if err := s.Fire(st, "x"); err == nil {
			t.Fatalf("wildcard rule did not fire at %s", st)
		}
	}
}

func TestFaultProbDeterministicAcrossSeeds(t *testing.T) {
	pattern := func(seed int64) []bool {
		s := NewSet(seed, Rule{Stage: Run, Kind: Error, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Fire(Run, "p/d") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 rule fired %d/%d times", fired, len(a))
	}
}

func TestFaultPanicKindCarriesInjectedPanic(t *testing.T) {
	s := NewSet(1, Rule{Stage: Profile, Kind: Panic, Nth: 1})
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok || ip.Stage != Profile || ip.Call != 1 {
			t.Fatalf("panic value = %#v", r)
		}
	}()
	s.Fire(Profile, "p/d")
	t.Fatal("panic rule did not panic")
}

func TestFaultDelayKindSleepsThenSucceeds(t *testing.T) {
	s := NewSet(1, Rule{Stage: Run, Kind: Delay, Delay: 2 * time.Millisecond, Nth: 1})
	start := time.Now()
	if err := s.Fire(Run, "p/d"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestFaultErrOverride(t *testing.T) {
	sentinel := errors.New("custom failure")
	s := NewSet(1, Rule{Stage: DBSave, Kind: Error, Err: sentinel})
	if err := s.Fire(DBSave, "db.json"); !errors.Is(err, sentinel) {
		t.Fatalf("override error = %v", err)
	}
}

func TestTornWriteSeparateCounterAndBound(t *testing.T) {
	s := NewSet(7,
		Rule{Stage: CacheWrite, Kind: Error, Nth: 1},     // Fire-side rule
		Rule{Stage: CacheWrite, Kind: TornWrite, Nth: 1}, // Torn-side rule
	)
	// Torn ignores Error rules and keeps its own call counter, so the
	// first Torn consultation matches Nth:1 regardless of Fire traffic.
	if err := s.Fire(CacheWrite, "p/d"); err == nil {
		t.Fatal("fire-side rule did not fire")
	}
	n := s.Torn(CacheWrite, "p/d", 100)
	if n < 0 || n >= 100 {
		t.Fatalf("torn length %d out of [0,100)", n)
	}
	if m := s.Torn(CacheWrite, "p/d", 100); m != 100 {
		t.Fatalf("second torn consultation truncated to %d", m)
	}
	// TornWrite rules never surface through Fire.
	if err := s.Fire(CacheWrite, "p/d"); err != nil {
		t.Fatalf("second fire hit a rule: %v", err)
	}
}

func TestTornWriteDeterministicLength(t *testing.T) {
	torn := func() int {
		s := NewSet(99, Rule{Stage: DBSave, Kind: TornWrite, Nth: 1})
		return s.Torn(DBSave, "x", 1000)
	}
	if a, b := torn(), torn(); a != b {
		t.Fatalf("same seed tore %d then %d bytes", a, b)
	}
}

func TestFaultThroughHealsDeterministically(t *testing.T) {
	s := NewSet(1, Rule{Stage: PeerFetch, Kind: Error, Label: "node2", Through: 3})
	for i := 1; i <= 6; i++ {
		err := s.Fire(PeerFetch, "http://node2:1234")
		if (err != nil) != (i <= 3) {
			t.Fatalf("call %d: err = %v, want fault only through call 3", i, err)
		}
	}
	if s.Fired(PeerFetch) != 3 || s.Calls(PeerFetch) != 6 {
		t.Fatalf("fired=%d calls=%d", s.Fired(PeerFetch), s.Calls(PeerFetch))
	}
	// Nth wins over Through when both are set on one rule.
	s2 := NewSet(1, Rule{Stage: DBLoad, Kind: Error, Nth: 2, Through: 5})
	for i := 1; i <= 5; i++ {
		if err := s2.Fire(DBLoad, "x"); (err != nil) != (i == 2) {
			t.Fatalf("call %d: err = %v, want fault only on call 2", i, err)
		}
	}
}

package route

import (
	"fmt"
	"reflect"
	"testing"
)

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8723", i+1)
	}
	return out
}

func TestPickMatchesOrderHead(t *testing.T) {
	ns := nodes(5)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("prog%02d@d%d", i%17, i%3)
		ord := Order(ns, key)
		if len(ord) != len(ns) {
			t.Fatalf("Order returned %d nodes, want %d", len(ord), len(ns))
		}
		if got := Pick(ns, key); got != ord[0] {
			t.Fatalf("Pick(%q) = %q, Order head = %q", key, got, ord[0])
		}
	}
}

func TestOrderDeterministicAndInputUntouched(t *testing.T) {
	ns := nodes(4)
	orig := append([]string(nil), ns...)
	a := Order(ns, "p@d")
	b := Order(ns, "p@d")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Order not deterministic: %v vs %v", a, b)
	}
	if !reflect.DeepEqual(ns, orig) {
		t.Fatalf("Order mutated its input: %v", ns)
	}
}

// TestFailoverStability is rendezvous hashing's point: removing one
// node must reassign only that node's keys.
func TestFailoverStability(t *testing.T) {
	ns := nodes(4)
	dead := ns[2]
	var survivors []string
	for _, n := range ns {
		if n != dead {
			survivors = append(survivors, n)
		}
	}
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("prog%03d@d%d", i, i%4)
		before := Pick(ns, key)
		after := Pick(survivors, key)
		if before == dead {
			// After losing its home, the key must land on the failover
			// node Order predicted.
			if want := Order(ns, key)[1]; after != want {
				t.Fatalf("key %q: failover to %q, Order predicted %q", key, after, want)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %q moved from %q to %q though its home survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys homed on the removed node; test is vacuous")
	}
}

// TestSpread sanity-checks the load balance: with many keys no node
// should be wildly over- or under-loaded.
func TestSpread(t *testing.T) {
	ns := nodes(3)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[Pick(ns, fmt.Sprintf("prog%04d@d%d", i, i%5))]++
	}
	want := keys / len(ns)
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %s got %d of %d keys (expected ≈%d)", n, c, keys, want)
		}
	}
	if len(counts) != len(ns) {
		t.Errorf("only %d of %d nodes received keys", len(counts), len(ns))
	}
}

func TestEmptyNodes(t *testing.T) {
	if got := Pick(nil, "k"); got != "" {
		t.Errorf("Pick(nil) = %q, want empty", got)
	}
	if got := Order(nil, "k"); len(got) != 0 {
		t.Errorf("Order(nil) = %v, want empty", got)
	}
}

// Package route is client-side request routing for a branchprofd
// replication cluster: rendezvous (highest-random-weight) hashing over
// the node list, so every client with the same list independently
// sends a given profile key to the same node — keeping each key's
// write stream on one "home" node (its component accumulates in one
// place and gossip replication carries it everywhere) without any
// coordination service.
//
// Rendezvous hashing is used instead of a ring because the node lists
// here are small (a handful of replicas) and its failover property is
// exactly what a retrying client wants: Order returns ALL nodes sorted
// by preference for the key, and dropping the failed head reassigns
// only that node's keys — every other key keeps its home.
package route

import "sort"

// fnv64a hashes s with the 64-bit FNV-1a the sharded store also uses.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// score is node's weight for key: the hash of the joined pair. The
// NUL separator cannot appear in either (URLs and validated keys), so
// distinct pairs never collide by concatenation.
func score(node, key string) uint64 {
	return fnv64a(node + "\x00" + key)
}

// Order returns nodes sorted by descending preference for key; the
// first element is the key's home node, the rest the failover order.
// Ties (only possible with duplicate node names) break lexically so
// the order is total and identical on every client. The input slice
// is not modified.
func Order(nodes []string, key string) []string {
	out := append([]string(nil), nodes...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(out[i], key), score(out[j], key)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Pick returns key's home node, or "" for an empty node list.
func Pick(nodes []string, key string) string {
	if len(nodes) == 0 {
		return ""
	}
	best, bestScore := "", uint64(0)
	for _, n := range nodes {
		if s := score(n, key); best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Quickstart: compile a small MF program, run it twice on different
// inputs, use the first run's branch profile to predict the second,
// and compare against the self oracle and the no-prediction baseline
// — the paper's whole methodology on one toy program.
package main

import (
	"fmt"
	"log"

	"branchprof"
)

// src counts word and line totals — data-dependent branching on the
// input's characters.
const src = `
func isword(c int) int {
	if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
		return 1;
	}
	return 0;
}

func main() int {
	var words int = 0;
	var lines int = 0;
	var inword int = 0;
	var c int = getc();
	while (c != -1) {
		if (c == '\n') {
			lines = lines + 1;
		}
		if (isword(c) == 1) {
			if (inword == 0) {
				words = words + 1;
			}
			inword = 1;
		} else {
			inword = 0;
		}
		c = getc();
	}
	puts("words "); puti(words); putc('\n');
	puts("lines "); puti(lines); putc('\n');
	return words;
}
`

func main() {
	prog, err := branchprof.Compile("wordcount", branchprof.Prelude()+src, branchprof.Options{})
	if err != nil {
		log.Fatal(err)
	}

	trainInput := []byte("the quick brown fox\njumps over the lazy dog\npack my box with five dozen jugs\n")
	targetInput := []byte("now is the time for all good people to come to the aid of their country\nagain and again\n")

	train, err := branchprof.Run(prog, trainInput)
	if err != nil {
		log.Fatal(err)
	}
	target, err := branchprof.Run(prog, targetInput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training run output:\n%s", train.Result.Output)
	fmt.Printf("target run output:\n%s", target.Result.Output)

	// No prediction: every conditional branch is a break in control.
	fmt.Printf("\ninstructions per break, unpredicted:      %6.1f\n",
		branchprof.InstructionsPerBreakUnpredicted(target, false))

	// The oracle: the target run predicts itself.
	selfPred, err := branchprof.PredictSelf(prog, target)
	if err != nil {
		log.Fatal(err)
	}
	selfIPB, _, err := branchprof.InstructionsPerBreak(target, selfPred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instructions per break, self (best case): %6.1f\n", selfIPB)

	// The paper's question: how close does a *previous run* come?
	crossPred, err := branchprof.PredictFromProfile(prog, train.Profile)
	if err != nil {
		log.Fatal(err)
	}
	crossIPB, bd, err := branchprof.InstructionsPerBreak(target, crossPred)
	if err != nil {
		log.Fatal(err)
	}
	pct, err := branchprof.PercentCorrect(target, crossPred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instructions per break, previous run:     %6.1f (%.1f%% branches correct, %d mispredicts)\n",
		crossIPB, 100*pct, bd.Mispredicts)
	fmt.Printf("previous-run prediction achieves %.0f%% of the best case\n", 100*crossIPB/selfIPB)
}

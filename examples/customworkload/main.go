// Customworkload: the full IFPROBBER feedback loop on a program you
// bring yourself. It writes a small MF benchmark (a hash-table
// exercise), profiles three runs into an accumulating database, emits
// the source annotated with IFPROB directives, and shows the
// prediction quality of the accumulated profile on a fresh dataset —
// the workflow a Multiflow user would have followed.
package main

import (
	"fmt"
	"log"
	"strings"

	"branchprof"
	"branchprof/internal/ifprob"
)

const src = `
const SZ = 1024;
var keys[SZ] int;
var vals[SZ] int;

func insert(k int, v int) {
	var h int = (k * 2654435761) & (SZ - 1);
	while (keys[h] != 0 && keys[h] != k) {
		h = (h + 1) & (SZ - 1);
	}
	keys[h] = k;
	vals[h] = v;
}

func find(k int) int {
	var h int = (k * 2654435761) & (SZ - 1);
	while (keys[h] != 0) {
		if (keys[h] == k) {
			return vals[h];
		}
		h = (h + 1) & (SZ - 1);
	}
	return -1;
}

func main() int {
	srand(7);
	var n int = geti();
	var i int;
	for (i = 1; i <= n; i = i + 1) {
		insert(i * 3 + 1, i);
	}
	var hits int = 0;
	for (i = 0; i < n * 4; i = i + 1) {
		if (find(rnd() % (n * 4) + 1) >= 0) {
			hits = hits + 1;
		}
	}
	puts("hits "); puti(hits); putc('\n');
	return hits;
}
`

func main() {
	prog, err := branchprof.Compile("hashbench", branchprof.Prelude()+src, branchprof.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Profile three "previous runs" into the accumulating database.
	db := ifprob.NewDB()
	for _, n := range []string{"120", "250", "400"} {
		run, err := branchprof.Run(prog, []byte(n+"\n"))
		if err != nil {
			log.Fatal(err)
		}
		prof := run.Profile
		prof.Dataset = "n=" + n
		if err := db.Add(prof); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiled n=%s: %d branch executions\n", n, prof.Executed())
	}

	accumulated := db.Get("hashbench")

	// Feed the counts back into the source as directives.
	annotated, err := branchprof.AnnotateSource(branchprof.Prelude()+src, prog, accumulated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlines that gained IFPROB feedback directives:")
	for _, line := range strings.Split(annotated, "\n") {
		if strings.Contains(line, "IFPROB") {
			fmt.Println(strings.TrimSpace(line))
		}
	}

	// Use the accumulated profile to predict a run it has never seen.
	fresh, err := branchprof.Run(prog, []byte("777\n"))
	if err != nil {
		log.Fatal(err)
	}
	pred, err := branchprof.PredictFromProfile(prog, accumulated)
	if err != nil {
		log.Fatal(err)
	}
	ipb, _, err := branchprof.InstructionsPerBreak(fresh, pred)
	if err != nil {
		log.Fatal(err)
	}
	selfPred, err := branchprof.PredictSelf(prog, fresh)
	if err != nil {
		log.Fatal(err)
	}
	selfIPB, _, err := branchprof.InstructionsPerBreak(fresh, selfPred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfresh dataset n=777: accumulated profile gives %.0f instrs/break (self bound %.0f, %.0f%%)\n",
		ipb, selfIPB, 100*ipb/selfIPB)
}

// Runlengths: visualizes the paper's §3 observation that breaks in
// control are not evenly spaced — "far more ILP will be available if
// one has 80 instructions followed by two mispredicted branches than
// if one has 40 instructions, a mispredicted branch". It runs the
// espresso workload under self prediction with a run-length recorder
// attached and prints the power-of-two histogram of instruction runs
// between breaks.
package main

import (
	"fmt"
	"log"

	"branchprof"
	"branchprof/internal/engine"
	"branchprof/internal/mfc"
	"branchprof/internal/runlength"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

func main() {
	w, err := workloads.ByName("espresso")
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.Default()
	prog, err := eng.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	input := w.Datasets[0].Gen()

	// First run gathers the profile; the second records run lengths
	// under the resulting (self) prediction.
	run, err := branchprof.Run(prog, input)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := branchprof.PredictSelf(prog, run)
	if err != nil {
		log.Fatal(err)
	}
	rec := runlength.New(pred)
	if _, err := eng.Run(prog, "", input, &vm.Config{Trace: rec}); err != nil {
		log.Fatal(err)
	}

	stats := rec.Summarize()
	fmt.Printf("espresso/%s under self prediction: %d breaks\n", w.Datasets[0].Name, stats.Count)
	fmt.Printf("run lengths: mean %.1f, median %.0f, p90 %.0f, p99 %.0f, max %d (CV %.2f)\n\n",
		stats.Mean, stats.Median, stats.P90, stats.P99, stats.Max, stats.CV)
	fmt.Println("instructions between breaks (power-of-two buckets):")
	fmt.Print(rec.Histogram(14))
	fmt.Println("\nthe long tail is the point: the mean alone understates how much")
	fmt.Println("straight-line work an ILP compiler can find between barriers.")
}

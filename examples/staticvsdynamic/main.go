// Staticvsdynamic: attaches simulated hardware branch predictors
// (1-bit last-direction and 2-bit saturating counter) to a run and
// compares their mispredict rates with static profile prediction on
// the identical branch stream — the trade-off the paper's "Static vs.
// Dynamic Branch Prediction" section frames.
//
// The demo program is a binary search over a sorted table: its
// compare branch is the classic hard case for static prediction
// (near 50/50) while its loop branches are easy, so the schemes
// separate visibly.
package main

import (
	"fmt"
	"log"

	"branchprof"
	"branchprof/internal/dynpred"
	"branchprof/internal/engine"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

const src = `
const N = 512;
var table[N] int;

func search(key int) int {
	var lo int = 0;
	var hi int = N - 1;
	while (lo <= hi) {
		var mid int = (lo + hi) / 2;
		if (table[mid] == key) {
			return mid;
		}
		if (table[mid] < key) {
			lo = mid + 1;
		} else {
			hi = mid - 1;
		}
	}
	return -1;
}

func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		table[i] = i * 7;
	}
	srand(42);
	var hits int = 0;
	for (i = 0; i < 4000; i = i + 1) {
		if (search(rnd() % (N * 7)) >= 0) {
			hits = hits + 1;
		}
	}
	putiln(hits);
	return hits;
}
`

func main() {
	eng := engine.Default()
	prog, err := eng.Compile("bsearch", branchprof.Prelude()+src, mfc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// First run: gather the profile for the static predictor.
	profRun, err := branchprof.Run(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	selfPred, err := branchprof.PredictSelf(prog, profRun)
	if err != nil {
		log.Fatal(err)
	}
	dirs := make([]bool, len(selfPred.Dir))
	for i, d := range selfPred.Dir {
		dirs[i] = d == predict.Taken
	}

	// Second run: measure every scheme on one branch stream.
	static := dynpred.NewStatic("static-profile", dirs)
	oneBit := dynpred.NewOneBit(len(prog.Sites))
	twoBit := dynpred.NewTwoBit(len(prog.Sites))
	multi := &dynpred.Multi{Predictors: []dynpred.Predictor{static, oneBit, twoBit}}
	if _, err := eng.Run(prog, "", nil, &vm.Config{Trace: multi}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("binary search over a sorted table: mispredict rates")
	for _, p := range []dynpred.Predictor{static, oneBit, twoBit} {
		fmt.Printf("  %-16s %6.2f%%  (%d of %d branches)\n",
			p.Name(), 100*float64(p.Mispredicts())/float64(p.Executed()),
			p.Mispredicts(), p.Executed())
	}
	fmt.Println("\nthe compare branch is ~50/50, so every scheme pays there;")
	fmt.Println("static profile prediction matches the 2-bit hardware scheme on")
	fmt.Println("the loop branches without any hardware at all — the paper's point.")
}

// Heuristics: compares profile feedback against the static heuristics
// a compiler could use with no profile at all — the paper's informal
// observation that simple loop/non-loop heuristics give up about a
// factor of two in instructions per break. Runs the comparison over
// every benchmark in the sample base.
package main

import (
	"fmt"
	"log"

	"branchprof"
	"branchprof/internal/predict"
	"branchprof/internal/workloads"
)

func main() {
	fmt.Println("instructions per break: profile feedback vs static heuristics")
	fmt.Printf("%-12s %-12s %9s %9s %9s %7s\n",
		"program", "dataset", "profile", "loop-heur", "taken", "factor")
	var worstFactor, bestFactor float64
	for _, w := range workloads.All() {
		prog, err := branchprof.Compile(w.Name, w.Source, branchprof.Options{})
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		ds := w.Datasets[0]
		run, err := branchprof.Run(prog, ds.Gen())
		if err != nil {
			log.Fatalf("%s/%s: %v", w.Name, ds.Name, err)
		}
		profPred, err := branchprof.PredictSelf(prog, run)
		if err != nil {
			log.Fatal(err)
		}
		profIPB, _, err := branchprof.InstructionsPerBreak(run, profPred)
		if err != nil {
			log.Fatal(err)
		}
		loopPred := branchprof.PredictHeuristic(prog)
		loopIPB, _, err := branchprof.InstructionsPerBreak(run, loopPred)
		if err != nil {
			log.Fatal(err)
		}
		takenPred := predict.FromHeuristic(prog.Sites, predict.AlwaysTaken)
		takenIPB, _, err := branchprof.InstructionsPerBreak(run, takenPred)
		if err != nil {
			log.Fatal(err)
		}
		factor := profIPB / loopIPB
		if worstFactor == 0 || factor < worstFactor {
			worstFactor = factor
		}
		if factor > bestFactor {
			bestFactor = factor
		}
		fmt.Printf("%-12s %-12s %9.0f %9.0f %9.0f %6.1fx\n",
			w.Name, ds.Name, profIPB, loopIPB, takenIPB, factor)
	}
	fmt.Printf("\nprofile feedback beats the loop heuristic by %.1fx-%.1fx across the sample\n",
		worstFactor, bestFactor)
}

// Crossdataset: the paper's central experiment on one real workload.
// It takes the compress benchmark, runs every dataset, and builds the
// full pairwise prediction matrix: each dataset predicting every
// other, plus the scaled sum of all others — showing how one outlier
// dataset (the C-source input, like the paper's cmprssc) predicts the
// rest poorly while the combined predictor stays robust.
package main

import (
	"fmt"
	"log"

	"branchprof"
	"branchprof/internal/workloads"
)

func main() {
	w, err := workloads.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := branchprof.Compile(w.Name, w.Source, branchprof.Options{})
	if err != nil {
		log.Fatal(err)
	}

	var runs []*branchprof.RunResult
	for _, ds := range w.Datasets {
		r, err := branchprof.Run(prog, ds.Gen())
		if err != nil {
			log.Fatalf("%s: %v", ds.Name, err)
		}
		runs = append(runs, r)
	}

	fmt.Println("compress: instructions per break, each dataset predicting each other")
	fmt.Printf("%-10s", "pred\\targ")
	for _, ds := range w.Datasets {
		fmt.Printf(" %9s", ds.Name)
	}
	fmt.Println()
	for i, ds := range w.Datasets {
		fmt.Printf("%-10s", ds.Name)
		for j := range w.Datasets {
			pred, err := branchprof.PredictFromProfile(prog, runs[i].Profile)
			if err != nil {
				log.Fatal(err)
			}
			ipb, _, err := branchprof.InstructionsPerBreak(runs[j], pred)
			if err != nil {
				log.Fatal(err)
			}
			marker := " "
			if i == j {
				marker = "*" // self prediction: the upper bound
			}
			fmt.Printf(" %8.0f%s", ipb, marker)
		}
		fmt.Println()
	}

	fmt.Printf("%-10s", "sum-others")
	for j := range w.Datasets {
		var others []*branchprof.Profile
		for i := range runs {
			if i != j {
				others = append(others, runs[i].Profile)
			}
		}
		pred, err := branchprof.PredictScaledSum(prog, others)
		if err != nil {
			log.Fatal(err)
		}
		ipb, _, err := branchprof.InstructionsPerBreak(runs[j], pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %8.0f ", ipb)
	}
	fmt.Println()
	fmt.Println("\n(* = dataset predicting itself, the best possible static prediction;")
	fmt.Println(" accumulating several runs stays close to that bound even when single")
	fmt.Println(" predictors are poor — the paper's recommendation.)")
}

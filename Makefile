# Tier-1 verification for the branchprof repo.
#
#   make verify   build + full test suite + vet + race on the
#                 concurrency-bearing packages (engine, exp)
#   make test     build + full test suite only
#   make race     the race step alone (-short skips the full-matrix
#                 identity tests, which re-run un-raced under `make test`;
#                 the race detector still covers Collect's worker pool
#                 and every cache path via the package's other tests)
#   make bench    the cold vs warm cache benchmark pair

GO ?= go

.PHONY: verify test vet race bench

verify: test vet race

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./internal/engine/... ./internal/exp/...

bench:
	$(GO) test -run xxx -bench 'BenchmarkSuiteCollect(Cold|Warm)' -benchtime 3x .

# Tier-1 verification for the branchprof repo.
#
#   make verify   build + full test suite + vet + race on the
#                 concurrency-bearing packages (engine, exp) + chaos
#   make test     build + full test suite only
#   make race     the race step alone (-short skips the full-matrix
#                 identity tests, which re-run un-raced under `make test`;
#                 the race detector still covers Collect's worker pool
#                 and every cache path via the package's other tests)
#   make chaos    the fault-injection matrix under the race detector,
#                 run twice (-count=2) to shake out ordering luck; -short
#                 keeps the full-matrix degraded tests in `make test`
#   make obs      the observability golden tests (byte-exact trace,
#                 Prometheus and folded-stack output under a stepped
#                 clock) raced and repeated to catch ordering luck
#   make chaos-server  branchprofd under the race detector: burst
#                 shedding, graceful drain, the circuit-breaker fault
#                 matrix, and the cross-process file locks
#   make soak     the sharded-store soak under the race detector:
#                 concurrent batch + streaming + single-profile ingest,
#                 prediction and health reads while one shard's disk
#                 fails — its breaker must open alone and the drain
#                 must keep every healthy shard's profiles
#   make soak-cluster  the replication convergence soak under the race
#                 detector: a three-node journaling cluster under
#                 concurrent ingest with one node crash-killed by a
#                 failpoint mid-stream-ingest and a partition that
#                 heals mid-run; healthy nodes must serve with no 5xx,
#                 the dead node's restart must replay exactly its
#                 acknowledged journal records, and all nodes must
#                 converge to bit-identical snapshots
#   make crash    the write-ahead journal's crash-consistency proof
#                 under the race detector: the wal package suite plus
#                 TestCrashRecoveryMatrix, which kills the server at
#                 every journal operation (append, sync, save,
#                 truncate, replay) under every ingest path and
#                 requires acknowledged-exactly-once accounting after
#                 recovery; see docs/ROBUSTNESS.md "Durability contract"
#   make fuzz     10s smoke of each native fuzz target (compiler,
#                 assembler, profile DB decoder, run-cache decoder,
#                 VM differential); longer runs: make fuzz FUZZTIME=5m
#   make gencheck the generated-code freshness gate: regenerating the
#                 compiled workload bodies must leave the tree clean,
#                 and the generated package (plus the generator) must
#                 be vet-clean; part of `make verify`
#   make bench    the paired interpreter/codegen comparison, then the
#                 cold vs warm cache benchmark pair, the raw
#                 interpreter benchmark and the predictor-zoo
#                 simulation throughput, each appended to the
#                 BENCH_VM.json trajectory (one entry per build;
#                 see docs/PERF.md)
#   make bench-codegen  the codegen speedup booking alone: BENCHPAIRS
#                 alternating interpreter/codegen invocation pairs on
#                 the li sievel workload, appended to BENCH_VM.json
#                 with the interpreter lines embedded as the baseline
#   make bench-server  cmd/loadgen drives a sharded branchprofd over
#                 loopback — single vs batch vs streaming ingest — and
#                 appends the result to the BENCH_SERVER.json trajectory;
#                 a second pass runs the same workload hash-routed
#                 across a replicated three-node cluster (-nodes 3), so
#                 the trajectory also tracks replication's ingest cost;
#                 further passes journal through the write-ahead log
#                 under each fsync policy (-wal-fsync record/batch/
#                 interval), so the trajectory prices durability too
#   make bench-smoke  one-iteration run of the interpreter benchmark,
#                 part of `make verify` so the perf harness can't rot

GO ?= go
FUZZTIME ?= 10s
BENCHCOUNT ?= 3
BENCHPAIRS ?= 3
BENCHLABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: verify test vet race chaos obs chaos-server soak soak-cluster crash fuzz gencheck bench bench-codegen bench-server bench-smoke

verify: test vet gencheck race chaos obs chaos-server soak soak-cluster crash fuzz bench-smoke

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gencheck proves the committed generated workload bodies are fresh:
# regenerating them must be a no-op against the working tree, and the
# generated package must be vet-clean on its own.
gencheck:
	$(GO) generate ./internal/workloads/compiled
	git diff --exit-code -- internal/workloads/compiled
	$(GO) vet ./internal/workloads/compiled/ ./internal/vm/codegen/...

race:
	$(GO) test -race -short ./internal/engine/... ./internal/exp/... \
		./internal/dynpred/... ./internal/runlength/...

chaos:
	$(GO) test -race -count=2 -short -run 'Fault|Degraded|Cancel|Retry|Torn|Corrupt|Partial' \
		./internal/faults/... ./internal/engine/... ./internal/exp/... \
		./internal/ifprob/... ./internal/predict/... ./internal/vm/...

obs:
	$(GO) test -race -count=2 -run 'Obs|Golden|Trace|Metric|Span|Prom|Chrome|Sample|Folded|Serve' \
		./internal/obs/... ./internal/engine/... ./internal/vm/...
	$(GO) test -race -count=2 -run 'ZeroBranch|SafeJSON|MarshalSafe|EncodeSafe|ZeroExec' \
		./internal/exp/... ./internal/predict/... ./internal/breaks/...

chaos-server:
	$(GO) test -race -count=1 ./internal/server/... ./internal/flock/...

soak:
	$(GO) test -race -count=1 -run 'TestSoak|TestDifferential' ./internal/server/ ./internal/store/...

soak-cluster:
	$(GO) test -race -count=2 -run 'TestSoakClusterConvergence|TestSync' ./internal/server/

crash:
	$(GO) test -race -count=1 -run 'TestCrashRecoveryMatrix|TestWAL|TestManifest' \
		./internal/server/ ./internal/store/wal/ ./internal/store/shardstore/

fuzz:
	$(GO) test -run xxx -fuzz FuzzCompile$$ -fuzztime $(FUZZTIME) ./internal/mfc/
	$(GO) test -run xxx -fuzz FuzzAssemble -fuzztime $(FUZZTIME) ./internal/asm/
	$(GO) test -run xxx -fuzz FuzzDBLoad -fuzztime $(FUZZTIME) ./internal/ifprob/
	$(GO) test -run xxx -fuzz FuzzCacheDecode -fuzztime $(FUZZTIME) ./internal/engine/
	$(GO) test -run xxx -fuzz FuzzVMDifferential -fuzztime $(FUZZTIME) ./internal/vm/

bench: bench-codegen
	$(GO) test -run xxx -bench 'BenchmarkSuiteCollect(Cold|Warm)' -benchtime 3x .
	$(GO) test -run xxx -bench 'BenchmarkVMInterpreter$$' -benchtime 10x -count $(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL) -o BENCH_VM.json
	$(GO) test -run xxx -bench 'BenchmarkPredictorZoo$$' -benchtime 10x -count $(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL)-predzoo -o BENCH_VM.json

# bench-codegen books the interpreter → codegen speedup with the
# paired protocol the PR 5 baseline used: BENCHPAIRS alternating
# invocation pairs (interpreter, then codegen) so thermal and
# scheduler drift land on both sides evenly; the interpreter lines
# become the entry's embedded baseline and speedup_x is the geomean
# ratio. One command, reproducible: make bench-codegen.
bench-codegen:
	@rm -f .bench-interp.tmp .bench-codegen.tmp
	for i in $$(seq $(BENCHPAIRS)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkVMInterpreter$$' -benchtime 10x . | tee -a .bench-interp.tmp && \
		$(GO) test -run '^$$' -bench 'BenchmarkVMCodegen$$' -benchtime 10x . | tee -a .bench-codegen.tmp || exit 1; \
	done
	$(GO) run ./cmd/benchjson -append -label $(BENCHLABEL)-codegen \
		-baseline .bench-interp.tmp -o BENCH_VM.json \
		-note "paired $(BENCHPAIRS)x alternating interpreter/codegen, li sievel" \
		< .bench-codegen.tmp
	@rm -f .bench-interp.tmp .bench-codegen.tmp

bench-server:
	$(GO) run ./cmd/loadgen -rounds $(BENCHCOUNT) \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL) -o BENCH_SERVER.json
	$(GO) run ./cmd/loadgen -rounds $(BENCHCOUNT) -nodes 3 \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL)-routed3 -o BENCH_SERVER.json
	$(GO) run ./cmd/loadgen -rounds $(BENCHCOUNT) -wal-fsync record \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL)-wal-record -o BENCH_SERVER.json
	$(GO) run ./cmd/loadgen -rounds $(BENCHCOUNT) -wal-fsync batch \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL)-wal-batch -o BENCH_SERVER.json
	$(GO) run ./cmd/loadgen -rounds $(BENCHCOUNT) -wal-fsync interval \
		| $(GO) run ./cmd/benchjson -append -label $(BENCHLABEL)-wal-interval -o BENCH_SERVER.json

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkVM(Interpreter|Codegen)$$' -benchtime 1x .
